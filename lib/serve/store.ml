type submission = {
  id : int;
  tenant : string;
  backend : string;
  cases : string list;
  opts : Exec.Campaign_opts.t;
}

type completion = { cases : int; passed : int; failed : string option }

type quarantine_info = {
  crashes : int;
  reason : string;
  backtrace : string;
  last_case : string option;
}

type status =
  | Queued
  | Done of completion
  | Cancelled
  | Quarantined of quarantine_info

type t = {
  dir : string;
  queue_dir : string;
  results_dir : string;
  jobs_dir : string;
  quarantine_dir : string;
  statuses : (int, status) Hashtbl.t;
  subs : (int, submission) Hashtbl.t;
  attempts : (int, int * int) Hashtbl.t;  (* id -> started, ended *)
  mutable next_id : int;
}

let job_file t id = Filename.concat t.queue_dir (Printf.sprintf "job-%06d.json" id)
let done_file t id = Filename.concat t.queue_dir (Printf.sprintf "done-%06d.json" id)

let cancelled_file t id =
  Filename.concat t.queue_dir (Printf.sprintf "cancelled-%06d.json" id)

let attempts_file t id =
  Filename.concat t.queue_dir (Printf.sprintf "attempts-%06d.json" id)

let quarantine_file t id =
  Filename.concat t.quarantine_dir (Printf.sprintf "job-%06d.json" id)

let results_path t id =
  Filename.concat t.results_dir (Printf.sprintf "job-%06d.jsonl" id)

let journal_dir t id = Filename.concat t.jobs_dir (Printf.sprintf "job-%06d" id)

(* -- submission codec --------------------------------------------------- *)

let render_submission s =
  Rb_util.Json.(
    to_string
      (Obj
         [ ("id", Num (float_of_int s.id));
           ("tenant", Str s.tenant);
           ("backend", Str s.backend);
           ("cases", List (List.map (fun c -> Str c) s.cases));
           ("opts", Exec.Campaign_opts.to_wire_json s.opts) ]))

let parse_submission text =
  let ( let* ) r f = Result.bind r f in
  let open Rb_util.Json in
  let* json = parse text in
  let field name conv =
    match Option.bind (member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "submission field %S missing or mistyped" name)
  in
  let* id = field "id" to_int in
  let* tenant = field "tenant" to_str in
  let* backend = field "backend" to_str in
  let* cases = field "cases" to_list in
  let* cases =
    List.fold_right
      (fun c acc ->
        let* acc = acc in
        match to_str c with
        | Some s -> Ok (s :: acc)
        | None -> Error "non-string case name")
      cases (Ok [])
  in
  let* opts =
    match member "opts" json with
    | Some o -> Exec.Campaign_opts.of_wire_json o
    | None -> Ok Exec.Campaign_opts.default
  in
  Ok { id; tenant; backend; cases; opts }

let render_completion id c =
  Rb_util.Json.(
    to_string
      (Obj
         ([ ("id", Num (float_of_int id));
            ("cases", Num (float_of_int c.cases));
            ("passed", Num (float_of_int c.passed)) ]
         @ match c.failed with None -> [] | Some m -> [ ("failed", Str m) ])))

let parse_completion text =
  match Rb_util.Json.parse text with
  | Error _ -> None
  | Ok j ->
    let open Rb_util.Json in
    let int name = Option.bind (member name j) to_int in
    (match (int "cases", int "passed") with
    | Some cases, Some passed ->
      Some { cases; passed; failed = Option.bind (member "failed" j) to_str }
    | _ -> None)

let render_attempts id ~started ~ended =
  Printf.sprintf {|{"id":%d,"started":%d,"ended":%d}|} id started ended

let parse_attempts text =
  match Rb_util.Json.parse text with
  | Error _ -> None
  | Ok j ->
    let open Rb_util.Json in
    let int name = Option.bind (member name j) to_int in
    (match (int "started", int "ended") with
    | Some s, Some e -> Some (s, e)
    | _ -> None)

let render_quarantine id q =
  Rb_util.Json.(
    to_string
      (Obj
         ([ ("id", Num (float_of_int id));
            ("crashes", Num (float_of_int q.crashes));
            ("reason", Str q.reason);
            ("backtrace", Str q.backtrace) ]
         @
         match q.last_case with
         | None -> []
         | Some c -> [ ("last_case", Str c) ])))

let parse_quarantine text =
  match Rb_util.Json.parse text with
  | Error _ -> None
  | Ok j ->
    let open Rb_util.Json in
    let str name = Option.bind (member name j) to_str in
    (match (Option.bind (member "crashes" j) to_int, str "reason") with
    | Some crashes, Some reason ->
      Some
        { crashes; reason;
          backtrace = Option.value ~default:"" (str "backtrace");
          last_case = str "last_case" }
    | _ -> None)

(* -- fsck ---------------------------------------------------------------- *)

(* Every durable record is classified, none is trusted blindly, and no
   classification is ever fatal: a torn or corrupt record is moved into
   [quarantined/corrupt/] (preserving the bytes for triage), a healable
   one is rewritten clean, and the scan continues. The startup scrub runs
   exactly this over the state dir before any record is parsed for real,
   so the server can be pointed at a state dir that survived kill -9,
   disk rot or a meddling operator and still come up. *)

type fsck_issue = {
  rel_path : string;    (* relative to the state dir *)
  severity : [ `Healed | `Torn | `Corrupt ];
  detail : string;
  action : string;
}

type fsck_report = {
  scanned : int;
  intact : int;
  legacy : int;
  issues : fsck_issue list;
}

let fsck_count sev r =
  List.length (List.filter (fun i -> i.severity = sev) r.issues)

let severity_label = function
  | `Healed -> "healed"
  | `Torn -> "torn"
  | `Corrupt -> "corrupt"

let fsck_report_to_json r =
  let open Rb_util.Json in
  let num i = Num (float_of_int i) in
  Obj
    [ ("scanned", num r.scanned);
      ("intact", num r.intact);
      ("legacy", num r.legacy);
      ("healed", num (fsck_count `Healed r));
      ("torn", num (fsck_count `Torn r));
      ("corrupt", num (fsck_count `Corrupt r));
      ( "issues",
        List
          (List.map
             (fun i ->
               Obj
                 [ ("path", Str i.rel_path);
                   ("severity", Str (severity_label i.severity));
                   ("detail", Str i.detail);
                   ("action", Str i.action) ])
             r.issues) ) ]

let list_dir dir =
  match Sys.readdir dir with
  | files ->
    let l = Array.to_list files in
    List.sort compare l
  | exception Sys_error _ -> []

let is_tmp_file f =
  (* write_atomic's temporary sibling: `<name>.tmp.<pid>` — left behind
     only when the writer was killed between open and rename *)
  let rec find i =
    i + 5 <= String.length f && (String.sub f i 5 = ".tmp." || find (i + 1))
  in
  find 0

let id_of ~prefix f =
  let pn = String.length prefix in
  if
    String.length f = pn + 11
    && String.sub f 0 pn = prefix
    && Filename.check_suffix f ".json"
  then int_of_string_opt (String.sub f pn 6)
  else None

type fsck_ctx = {
  root : string;
  heal : bool;
  mutable f_scanned : int;
  mutable f_intact : int;
  mutable f_legacy : int;
  mutable f_issues : fsck_issue list;  (* reverse order *)
}

let ctx_issue ctx ~rel ~severity ~detail ~action =
  ctx.f_issues <- { rel_path = rel; severity; detail; action } :: ctx.f_issues

let corrupt_dir root = Filename.concat (Filename.concat root "quarantined") "corrupt"

(* Move a bad record out of the scan path, keeping its bytes for triage.
   The destination name flattens the relative path so nothing collides. *)
let set_aside ctx ~rel path =
  if ctx.heal then begin
    Rb_util.Fsfile.mkdir_p (corrupt_dir ctx.root);
    let flat = String.map (fun c -> if c = '/' then '-' else c) rel in
    (match Sys.rename path (Filename.concat (corrupt_dir ctx.root) flat) with
    | () -> ()
    | exception Sys_error _ -> Rb_util.Fsfile.remove_if_exists path);
    Rb_util.Fsfile.fsync_dir (Filename.dirname path);
    "set aside in quarantined/corrupt/"
  end
  else "would set aside in quarantined/corrupt/ (dry run)"

let drop_tmp ctx ~rel path =
  let action =
    if ctx.heal then begin
      Rb_util.Fsfile.remove_if_exists path;
      "removed"
    end
    else "would remove (dry run)"
  in
  ctx_issue ctx ~rel ~severity:`Healed
    ~detail:"stale temporary from an interrupted atomic write" ~action

(* A checksummed single-record file: parseable payload required. *)
let fsck_record ctx ~rel ~parse path =
  ctx.f_scanned <- ctx.f_scanned + 1;
  let verified_payload cls p =
    if parse p then
      match cls with
      | `I -> ctx.f_intact <- ctx.f_intact + 1
      | `L -> ctx.f_legacy <- ctx.f_legacy + 1
    else
      let action = set_aside ctx ~rel path in
      ctx_issue ctx ~rel ~severity:`Corrupt
        ~detail:"checksum fine but payload unparseable" ~action
  in
  match Rb_util.Fsfile.read_checked path with
  | Rb_util.Fsfile.Missing -> ()
  | Rb_util.Fsfile.Intact p -> verified_payload `I p
  | Rb_util.Fsfile.Legacy p -> verified_payload `L p
  | Rb_util.Fsfile.Healed p ->
    if parse p then begin
      let action =
        if ctx.heal then begin
          Rb_util.Fsfile.write_checked path p;
          "rewrote without the trailing junk"
        end
        else "would rewrite without the trailing junk (dry run)"
      in
      ctx_issue ctx ~rel ~severity:`Healed
        ~detail:"verified prefix followed by junk bytes" ~action
    end
    else
      let action = set_aside ctx ~rel path in
      ctx_issue ctx ~rel ~severity:`Corrupt
        ~detail:"healable prefix but payload unparseable" ~action
  | Rb_util.Fsfile.Torn ->
    let action = set_aside ctx ~rel path in
    ctx_issue ctx ~rel ~severity:`Torn
      ~detail:"payload shorter than its header declares" ~action
  | Rb_util.Fsfile.Corrupt why ->
    let action = set_aside ctx ~rel path in
    ctx_issue ctx ~rel ~severity:`Corrupt ~detail:why ~action

(* Results are plain JSONL (their bytes are the wire/byte-identity
   contract, so no header). A torn tail — final line unterminated or
   unparseable — is dropped; a bad interior line means rot in an
   atomically-written file, so the whole file is set aside. *)
let fsck_results ctx ~rel path =
  ctx.f_scanned <- ctx.f_scanned + 1;
  match Rb_util.Fsfile.read path with
  | None -> ()
  | Some text ->
    let n = String.length text in
    let lines = if text = "" then [] else String.split_on_char '\n' text in
    (* a well-formed file ends with '\n', so split yields a trailing "" *)
    let rec check_lines = function
      | [] | [ "" ] -> `Ok
      | [ last ] ->
        (* no trailing newline: the write was cut mid-line *)
        (match Rb_util.Json.parse last with
        | Ok _ | Error _ -> `Torn_tail (String.length last + 0))
      | line :: rest -> (
        match Rb_util.Json.parse line with
        | Ok _ -> check_lines rest
        | Error _ ->
          (* distinguish "bad last full line" (torn) from interior rot *)
          (match rest with
          | [ "" ] -> `Torn_tail (String.length line + 1)
          | _ -> `Interior))
    in
    (match check_lines lines with
    | `Ok -> ctx.f_intact <- ctx.f_intact + 1
    | `Torn_tail tail_len ->
      let keep = String.sub text 0 (n - tail_len) in
      let action =
        if ctx.heal then begin
          Rb_util.Fsfile.write_atomic path keep;
          "dropped the torn trailing line"
        end
        else "would drop the torn trailing line (dry run)"
      in
      ctx_issue ctx ~rel ~severity:`Healed ~detail:"torn trailing line" ~action
    | `Interior ->
      let action = set_aside ctx ~rel path in
      ctx_issue ctx ~rel ~severity:`Corrupt
        ~detail:"unparseable interior line" ~action)

let fsck ?(heal = true) ~dir () =
  let ctx =
    { root = dir; heal; f_scanned = 0; f_intact = 0; f_legacy = 0; f_issues = [] }
  in
  let queue_dir = Filename.concat dir "queue" in
  let results_dir = Filename.concat dir "results" in
  let jobs_dir = Filename.concat dir "jobs" in
  let quarantine_dir = Filename.concat dir "quarantined" in
  (* 1. stale tmp files anywhere in the tree *)
  let sweep_tmp sub d =
    List.iter
      (fun f ->
        if is_tmp_file f then
          drop_tmp ctx ~rel:(Filename.concat sub f) (Filename.concat d f))
      (list_dir d)
  in
  sweep_tmp "queue" queue_dir;
  sweep_tmp "results" results_dir;
  sweep_tmp "quarantined" quarantine_dir;
  List.iter
    (fun j ->
      sweep_tmp (Filename.concat "jobs" j) (Filename.concat jobs_dir j))
    (list_dir jobs_dir);
  (* 2. queue records: submissions, markers, attempt counters *)
  let parse_ok p = function
    | `Sub -> Result.is_ok (parse_submission p)
    | `Done -> parse_completion p <> None
    | `Cancel -> Result.is_ok (Rb_util.Json.parse p)
    | `Attempts -> parse_attempts p <> None
  in
  let queue_files = list_dir queue_dir in
  let kind_of f =
    if id_of ~prefix:"job-" f <> None then Some `Sub
    else if id_of ~prefix:"done-" f <> None then Some `Done
    else if id_of ~prefix:"cancelled-" f <> None then Some `Cancel
    else if id_of ~prefix:"attempts-" f <> None then Some `Attempts
    else None
  in
  List.iter
    (fun f ->
      match kind_of f with
      | None -> ()
      | Some kind ->
        fsck_record ctx ~rel:(Filename.concat "queue" f)
          ~parse:(fun p -> parse_ok p kind)
          (Filename.concat queue_dir f))
    queue_files;
  (* 3. marker consistency: a done and a cancelled marker for the same job
     conflict — completion wins (the work demonstrably ran); markers for a
     job with no admission record are orphans. Re-list: step 2 may have
     set bad records aside. *)
  let queue_files = list_dir queue_dir in
  let ids prefix = List.filter_map (id_of ~prefix) queue_files in
  let job_ids = ids "job-" in
  let done_ids = ids "done-" in
  let orphan_or_dup f id reason =
    let rel = Filename.concat "queue" f in
    let action = set_aside ctx ~rel (Filename.concat queue_dir f) in
    ctx_issue ctx ~rel ~severity:`Healed
      ~detail:(Printf.sprintf "%s (job %d)" reason id)
      ~action
  in
  List.iter
    (fun f ->
      match
        ( id_of ~prefix:"done-" f, id_of ~prefix:"cancelled-" f,
          id_of ~prefix:"attempts-" f )
      with
      | Some id, _, _ when not (List.mem id job_ids) ->
        orphan_or_dup f id "marker without an admission record"
      | _, Some id, _ when not (List.mem id job_ids) ->
        orphan_or_dup f id "marker without an admission record"
      | _, _, Some id when not (List.mem id job_ids) ->
        orphan_or_dup f id "counter without an admission record"
      | _, Some id, _ when List.mem id done_ids ->
        orphan_or_dup f id "cancelled marker conflicting with a done marker"
      | _ -> ())
    queue_files;
  (* 4. stitched results *)
  List.iter
    (fun f ->
      if Filename.check_suffix f ".jsonl" then
        fsck_results ctx ~rel:(Filename.concat "results" f)
          (Filename.concat results_dir f))
    (list_dir results_dir);
  (* 5. per-job journals: a garbage record segment or manifest would make
     Journal.load refuse (or silently drop a valid tail), burning a crash
     attempt on the next dispatch — set the bad segment aside so resume
     recomputes from the surviving frontier instead *)
  List.iter
    (fun j ->
      let jdir = Filename.concat jobs_dir j in
      List.iter
        (fun f ->
          let is_rec =
            String.length f > 4
            && String.sub f 0 4 = "rec-"
            && Filename.check_suffix f ".json"
          in
          if is_rec || f = "MANIFEST.json" then begin
            ctx.f_scanned <- ctx.f_scanned + 1;
            let path = Filename.concat jdir f in
            match Option.map Rb_util.Json.parse (Rb_util.Fsfile.read path) with
            | Some (Ok _) -> ctx.f_intact <- ctx.f_intact + 1
            | None -> ()
            | Some (Error e) ->
              let rel = Filename.concat (Filename.concat "jobs" j) f in
              let action = set_aside ctx ~rel path in
              ctx_issue ctx ~rel ~severity:`Healed
                ~detail:
                  (Printf.sprintf "garbage journal segment (%s); resume will \
                                   recompute past this frontier" e)
                ~action
          end)
        (list_dir jdir))
    (list_dir jobs_dir);
  (* 6. quarantine records themselves *)
  List.iter
    (fun f ->
      if id_of ~prefix:"job-" f <> None then
        fsck_record ctx ~rel:(Filename.concat "quarantined" f)
          ~parse:(fun p -> parse_quarantine p <> None)
          (Filename.concat quarantine_dir f))
    (list_dir quarantine_dir);
  { scanned = ctx.f_scanned;
    intact = ctx.f_intact;
    legacy = ctx.f_legacy;
    issues = List.rev ctx.f_issues }

(* -- scan / open -------------------------------------------------------- *)

let scan_ids dir prefix = List.filter_map (id_of ~prefix) (list_dir dir)

let read_record path = Rb_util.Fsfile.(checked_payload (read_checked path))

let open_dir ?(scrub = true) ~dir () =
  let t =
    { dir;
      queue_dir = Filename.concat dir "queue";
      results_dir = Filename.concat dir "results";
      jobs_dir = Filename.concat dir "jobs";
      quarantine_dir = Filename.concat dir "quarantined";
      statuses = Hashtbl.create 64;
      subs = Hashtbl.create 64;
      attempts = Hashtbl.create 64;
      next_id = 0 }
  in
  Rb_util.Fsfile.mkdir_p t.queue_dir;
  Rb_util.Fsfile.mkdir_p t.results_dir;
  Rb_util.Fsfile.mkdir_p t.jobs_dir;
  Rb_util.Fsfile.mkdir_p t.quarantine_dir;
  (* startup scrub: classify every record, heal what can be healed, set
     aside what cannot — never fatal, so a rotted state dir degrades to
     "some jobs re-run or need triage", not "the fleet is down" *)
  if scrub then ignore (fsck ~heal:true ~dir () : fsck_report);
  (* Admission records are the source of truth; markers refine them. After
     the scrub everything left on disk is either checksum-verified or
     legacy; a record that still fails to parse is skipped, not fatal. *)
  List.iter
    (fun id ->
      match Option.map parse_submission (read_record (job_file t id)) with
      | Some (Ok sub) ->
        Hashtbl.replace t.subs id sub;
        Hashtbl.replace t.statuses id Queued
      | Some (Error _) | None -> ())
    (List.sort compare (scan_ids t.queue_dir "job-"));
  List.iter
    (fun id ->
      if Hashtbl.mem t.subs id then
        match Option.bind (read_record (done_file t id)) parse_completion with
        | Some c -> Hashtbl.replace t.statuses id (Done c)
        | None -> ())
    (scan_ids t.queue_dir "done-");
  List.iter
    (fun id ->
      if Hashtbl.mem t.subs id && not (Sys.file_exists (done_file t id)) then
        Hashtbl.replace t.statuses id Cancelled)
    (scan_ids t.queue_dir "cancelled-");
  List.iter
    (fun id ->
      if Hashtbl.mem t.subs id then
        match Option.bind (read_record (attempts_file t id)) parse_attempts with
        | Some (started, ended) -> Hashtbl.replace t.attempts id (started, ended)
        | None -> ())
    (scan_ids t.queue_dir "attempts-");
  List.iter
    (fun id ->
      if Hashtbl.mem t.subs id then
        match
          Option.bind (read_record (quarantine_file t id)) parse_quarantine
        with
        | Some q -> Hashtbl.replace t.statuses id (Quarantined q)
        | None -> ())
    (scan_ids t.quarantine_dir "job-");
  t.next_id <-
    1 + Hashtbl.fold (fun id _ acc -> max id acc) t.subs (-1);
  t

let dir t = t.dir

let submission t id = Hashtbl.find_opt t.subs id

let status t id = Hashtbl.find_opt t.statuses id

let pending t =
  Hashtbl.fold
    (fun id s acc -> match s with Queued -> id :: acc | _ -> acc)
    t.statuses []
  |> List.sort compare
  |> List.map (fun id -> Hashtbl.find t.subs id)

let counts t =
  Hashtbl.fold
    (fun _ s (q, d, c, z) ->
      match s with
      | Queued -> (q + 1, d, c, z)
      | Done _ -> (q, d + 1, c, z)
      | Cancelled -> (q, d, c + 1, z)
      | Quarantined _ -> (q, d, c, z + 1))
    t.statuses (0, 0, 0, 0)

(* -- transitions (each durable before it is acknowledged) ---------------- *)

let admit t ~tenant ~backend ~cases ~opts =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sub = { id; tenant; backend; cases; opts } in
  (* write_checked fsyncs the record and its directory entry: once this
     returns, a kill -9 cannot lose the acceptance we are about to send *)
  Rb_util.Fsfile.write_checked (job_file t id) (render_submission sub);
  Hashtbl.replace t.subs id sub;
  Hashtbl.replace t.statuses id Queued;
  sub

let cancel t id =
  match Hashtbl.find_opt t.statuses id with
  | Some Queued ->
    Rb_util.Fsfile.write_checked (cancelled_file t id)
      (Printf.sprintf {|{"id":%d}|} id);
    Hashtbl.replace t.statuses id Cancelled;
    true
  | _ -> false

(* -- crash accounting ---------------------------------------------------- *)

(* The per-job crash counter is a tiny durable WAL: [started] bumps before
   the job is handed to a runner slot, [ended] catches up when the attempt
   concludes under the server's control (completion, controlled failure,
   or cancellation). The difference is exactly the number of attempts that
   ended in a crash — a runner domain dying, a watchdog abandonment, or
   the whole server being killed with the job in flight — and it counts
   *across restarts*, because it is read back at startup. *)

let attempt_counts t id =
  Option.value ~default:(0, 0) (Hashtbl.find_opt t.attempts id)

let crash_count t id =
  let started, ended = attempt_counts t id in
  max 0 (started - ended)

let begin_attempt t id =
  let started, ended = attempt_counts t id in
  let started = started + 1 in
  Rb_util.Fsfile.write_checked (attempts_file t id)
    (render_attempts id ~started ~ended);
  Hashtbl.replace t.attempts id (started, ended)

let end_attempt t id =
  let started, _ = attempt_counts t id in
  Rb_util.Fsfile.write_checked (attempts_file t id)
    (render_attempts id ~started ~ended:started);
  Hashtbl.replace t.attempts id (started, started)

(* -- quarantine ---------------------------------------------------------- *)

(* The poisoned job's last journaled case — the final frame the runner
   completed before dying — preserved in the quarantine record so triage
   starts with "it died right after X". *)
let last_journaled_case t id =
  let jdir = journal_dir t id in
  let recs =
    List.filter
      (fun f ->
        String.length f > 4
        && String.sub f 0 4 = "rec-"
        && Filename.check_suffix f ".json")
      (list_dir jdir)
  in
  match List.rev recs with
  | [] -> None
  | last :: _ ->
    Option.bind (Rb_util.Fsfile.read (Filename.concat jdir last)) (fun text ->
        match Rb_util.Json.parse text with
        | Error _ -> None
        | Ok j -> Option.bind (Rb_util.Json.member "case" j) Rb_util.Json.to_str)

let quarantine t id ~reason ~backtrace =
  let q =
    { crashes = crash_count t id;
      reason;
      backtrace;
      last_case = last_journaled_case t id }
  in
  Rb_util.Fsfile.write_checked (quarantine_file t id) (render_quarantine id q);
  Hashtbl.replace t.statuses id (Quarantined q);
  q

let quarantined t =
  Hashtbl.fold
    (fun id s acc ->
      match s with Quarantined q -> (id, q) :: acc | _ -> acc)
    t.statuses []
  |> List.sort compare

(* -- results ------------------------------------------------------------- *)

let write_results t id reports =
  Rb_util.Fsfile.write_channel (results_path t id) (fun oc ->
      Rustbrain.Report.emit_jsonl oc (List.to_seq reports))

let complete t id completion =
  Rb_util.Fsfile.write_checked (done_file t id) (render_completion id completion);
  Hashtbl.replace t.statuses id (Done completion);
  end_attempt t id

let read_results t id = Rb_util.Fsfile.read (results_path t id)

(* Journaled case-repairs for a running job — progress visible across a
   kill because each record segment is its own durable file. *)
let progress t id =
  match Sys.readdir (journal_dir t id) with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if
          String.length f > 4
          && String.sub f 0 4 = "rec-"
          && Filename.check_suffix f ".json"
        then n + 1
        else n)
      0 files

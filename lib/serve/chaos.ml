(* Every fault here is something a real client (or a real network) does to
   a real server: writes split at arbitrary byte boundaries, connections
   dying mid-frame, headers that lie, readers that stop reading, churn.
   The harness drives them against a live server socket in a seeded,
   reproducible order, and after every fault proves the event loop is
   still answering with a clean probe round-trip — the property under
   test is not "the fault is handled" but "the blast radius is one
   connection". *)

type fault =
  | Split_write
  | Mid_frame_disconnect
  | Garbage_frame
  | Slowloris
  | Churn

let fault_label = function
  | Split_write -> "split-write"
  | Mid_frame_disconnect -> "mid-frame-disconnect"
  | Garbage_frame -> "garbage-frame"
  | Slowloris -> "slowloris"
  | Churn -> "churn"

let all_faults =
  [ Split_write; Mid_frame_disconnect; Garbage_frame; Slowloris; Churn ]

type step_result = {
  step : int;
  fault : fault;
  detail : string;
  probe_ok : bool;  (* did a fresh connection get a clean STATUS reply? *)
}

type outcome = {
  steps : step_result list;
  survived : bool;  (* every probe answered: the loop outlived every fault *)
}

let plan ~seed ~steps =
  let rng = Rb_util.Rng.create seed in
  List.init steps (fun _ -> Rb_util.Rng.pick rng all_faults)

(* -- raw socket helpers (the point is byte-level control, so no Client) -- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connect_raw socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Rb_util.Retry.on_eintr (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX socket))
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    close_quiet fd;
    Error (Unix.error_message e)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match
        Rb_util.Retry.on_eintr (fun () ->
            Unix.write_substring fd s off (n - off))
      with
      | w -> go (off + w)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let status_frame = Wire.encode (Wire.request_to_string (Wire.Status None))

(* A full valid frame written in seeded dribbles: the decoder must yield
   the same frames for any split of the byte stream, and the reply must
   still arrive. *)
let do_split_write rng socket =
  match connect_raw socket with
  | Error e -> Printf.sprintf "connect failed: %s" e
  | Ok fd ->
    let n = String.length status_frame in
    let cuts = ref 0 in
    let off = ref 0 in
    while !off < n do
      let step = 1 + Rb_util.Rng.int rng 3 in
      let len = min step (n - !off) in
      write_all fd (String.sub status_frame !off len);
      incr cuts;
      off := !off + len
    done;
    (* wait for any reply bytes so the server demonstrably decoded it *)
    let buf = Bytes.create 256 in
    let got =
      match
        Rb_util.Retry.on_eintr (fun () ->
            Unix.read fd buf 0 (Bytes.length buf))
      with
      | k -> k
      | exception Unix.Unix_error _ -> 0
    in
    close_quiet fd;
    Printf.sprintf "%d writes, %d reply bytes" !cuts got

(* Declared length bigger than the bytes that follow, then close: the
   server holds a partial frame forever on a dead connection and must
   just reap it. *)
let do_mid_frame_disconnect rng socket =
  match connect_raw socket with
  | Error e -> Printf.sprintf "connect failed: %s" e
  | Ok fd ->
    let keep = 4 + Rb_util.Rng.int rng (max 1 (String.length status_frame - 4))
    in
    write_all fd (String.sub status_frame 0 keep);
    close_quiet fd;
    Printf.sprintf "sent %d of %d bytes" keep (String.length status_frame)

(* A header the framing layer must refuse: zero length, a length past the
   frame bound, or plain junk. The connection is forfeit; the server is
   not. *)
let do_garbage_frame rng socket =
  match connect_raw socket with
  | Error e -> Printf.sprintf "connect failed: %s" e
  | Ok fd ->
    let variant = Rb_util.Rng.int rng 3 in
    let payload =
      match variant with
      | 0 ->
        let b = Bytes.make 8 '\000' in
        Bytes.set_int32_be b 0 0l;  (* declared length 0 *)
        Bytes.unsafe_to_string b
      | 1 ->
        let b = Bytes.make 8 'x' in
        Bytes.set_int32_be b 0 (Int32.of_int (1 lsl 30));  (* over bound *)
        Bytes.unsafe_to_string b
      | _ -> String.init 16 (fun _ -> Char.chr (Rb_util.Rng.int rng 256))
    in
    write_all fd payload;
    (* the server answers with an error frame and/or drops us; either way
       the read returning (bytes or EOF) means it processed the garbage *)
    let buf = Bytes.create 256 in
    (match
       Rb_util.Retry.on_eintr (fun () -> Unix.read fd buf 0 (Bytes.length buf))
     with
    | _ -> ()
    | exception Unix.Unix_error _ -> ());
    close_quiet fd;
    Printf.sprintf "variant %d" variant

(* Ask for output, then refuse to read it for a moment: the reply must sit
   in the server's bounded outbound buffer, not block its loop. *)
let do_slowloris rng socket =
  match connect_raw socket with
  | Error e -> Printf.sprintf "connect failed: %s" e
  | Ok fd ->
    let asks = 1 + Rb_util.Rng.int rng 4 in
    for _ = 1 to asks do
      write_all fd status_frame
    done;
    Unix.sleepf 0.05;
    close_quiet fd;
    Printf.sprintf "%d unread replies" asks

(* Connections that come and go without a useful byte. *)
let do_churn rng socket =
  let n = 2 + Rb_util.Rng.int rng 4 in
  let opened = ref 0 in
  for _ = 1 to n do
    match connect_raw socket with
    | Ok fd ->
      incr opened;
      close_quiet fd
    | Error _ -> ()
  done;
  Printf.sprintf "%d/%d connections" !opened n

let apply rng socket = function
  | Split_write -> do_split_write rng socket
  | Mid_frame_disconnect -> do_mid_frame_disconnect rng socket
  | Garbage_frame -> do_garbage_frame rng socket
  | Slowloris -> do_slowloris rng socket
  | Churn -> do_churn rng socket

(* A fresh, well-behaved connection getting a clean STATUS reply is the
   survival predicate: whatever the fault broke, it was not the loop. *)
let probe ?(timeout_s = 10.0) socket =
  match Client.connect ~retries:20 ~retry_delay_s:0.05 socket with
  | Error _ -> false
  | Ok c ->
    let ok =
      match Client.request ~timeout_s c (Wire.Status None) with
      | Ok (Wire.Server _) -> true
      | Ok _ | Error _ -> false
    in
    Client.close c;
    ok

(* -- worker-fault matrix ------------------------------------------------- *)

(* Faults the in-process pool could never survive (or never reclaim): a
   worker that SIGSTOPs itself is unsignallable except by SIGKILL, a
   SIGKILLed worker flushes nothing, an OOM worker dies to a resource
   limit. The property under test is the supervision ladder end to end:
   the hung worker is forcibly killed within stall-timeout + grace, the
   slot respawns, every retry is crash-accounted, and the job lands in
   quarantine after exactly max_crashes attempts — with the server
   answering probes throughout and no process leaked. *)

type worker_fault = Wf_stop | Wf_kill | Wf_oom

let worker_fault_label = function
  | Wf_stop -> "sigstop"
  | Wf_kill -> "sigkill"
  | Wf_oom -> "oom"

let all_worker_faults = [ Wf_stop; Wf_kill; Wf_oom ]

type worker_step = {
  w_fault : worker_fault;
  w_case : string;     (* the case the server's poison plan booby-traps *)
  w_job : int;         (* submitted job id; -1 if the step never started *)
  w_crashes : int;     (* crash count the quarantine verdict reported *)
  w_reason : string;   (* quarantine reason (names the death signal) *)
  w_reclaimed : bool;  (* no slot still references the job afterwards *)
  w_wall_s : float;    (* submit -> quarantine wall time *)
  w_probe_ok : bool;
}

type worker_outcome = {
  w_steps : worker_step list;
  w_pids : int list;   (* every distinct worker pid HEALTH reported *)
  w_survived : bool;
}

let has_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

let health c =
  match Client.request ~timeout_s:5.0 c Wire.Health with
  | Ok (Wire.Health { worker_pids; slots; _ }) -> Some (worker_pids, slots)
  | Ok _ | Error _ -> None

let run_worker_step ~timeout_s ~socket ~backend ~opts pids (w_fault, w_case) =
  let t0 = Unix.gettimeofday () in
  let note_pids wp = List.iter (fun p -> Hashtbl.replace pids p ()) wp in
  let finish ~w_job ~w_crashes ~w_reason ~w_reclaimed =
    { w_fault; w_case; w_job; w_crashes; w_reason; w_reclaimed;
      w_wall_s = Unix.gettimeofday () -. t0; w_probe_ok = probe socket }
  in
  let fail reason =
    finish ~w_job:(-1) ~w_crashes:0 ~w_reason:reason ~w_reclaimed:false
  in
  match Client.connect ~retries:20 ~retry_delay_s:0.05 socket with
  | Error e -> fail ("connect failed: " ^ e)
  | Ok sub -> (
    let submitted =
      Client.request ~timeout_s:5.0 sub
        (Wire.Submit
           { tenant = "chaos-worker"; backend; cases = Some [ w_case ]; opts })
    in
    (* drop the subscription immediately: quarantine progress is watched
       by STATUS polling on a fresh connection, which also proves the
       verdict is durable server state rather than a pushed frame *)
    Client.close sub;
    match submitted with
    | Ok (Wire.Accepted { id; _ }) -> (
      match Client.connect ~retries:20 ~retry_delay_s:0.05 socket with
      | Error e -> fail ("poll connect failed: " ^ e)
      | Ok c ->
        let deadline = t0 +. timeout_s in
        let job_gone () =
          (* reclaim predicate: no slot state still names this job *)
          match health c with
          | Some (wp, slots) ->
            note_pids wp;
            not
              (List.exists
                 (fun (_, s) ->
                   has_substring s (Printf.sprintf "job %d" id))
                 slots)
          | None -> false
        in
        let rec wait () =
          if Unix.gettimeofday () > deadline then
            fail
              (Printf.sprintf "job %d not quarantined within %.0fs" id
                 timeout_s)
          else
            match Client.request ~timeout_s:5.0 c (Wire.Status (Some id)) with
            | Ok (Wire.Job { state = Wire.Quarantined { crashes; reason; _ }; _ })
              ->
              let rec reclaim tries =
                if job_gone () then true
                else if tries = 0 then false
                else (Unix.sleepf 0.05; reclaim (tries - 1))
              in
              finish ~w_job:id ~w_crashes:crashes ~w_reason:reason
                ~w_reclaimed:(reclaim 100)
            | Ok _ ->
              ignore (job_gone ());
              Unix.sleepf 0.05;
              wait ()
            | Error e -> fail ("status poll failed: " ^ e)
        in
        let r = wait () in
        Client.close c;
        r)
    | Ok _ -> fail "submit not accepted"
    | Error e -> fail ("submit failed: " ^ e))

let run_worker_matrix ?(timeout_s = 60.0) ~socket ~backend ?opts ~plan () =
  let pids = Hashtbl.create 16 in
  let steps =
    List.map (run_worker_step ~timeout_s ~socket ~backend ~opts pids) plan
  in
  { w_steps = steps;
    w_pids =
      List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) pids []);
    w_survived =
      List.for_all
        (fun s -> s.w_probe_ok && s.w_reclaimed && s.w_job >= 0)
        steps }

let run ?(probe_timeout_s = 10.0) ~socket ~seed ~steps () =
  let rng = Rb_util.Rng.create seed in
  let faults = plan ~seed ~steps in
  let results =
    List.mapi
      (fun i fault ->
        let detail = apply rng socket fault in
        { step = i; fault; detail;
          probe_ok = probe ~timeout_s:probe_timeout_s socket })
      faults
  in
  { steps = results; survived = List.for_all (fun r -> r.probe_ok) results }

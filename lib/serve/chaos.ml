(* Every fault here is something a real client (or a real network) does to
   a real server: writes split at arbitrary byte boundaries, connections
   dying mid-frame, headers that lie, readers that stop reading, churn.
   The harness drives them against a live server socket in a seeded,
   reproducible order, and after every fault proves the event loop is
   still answering with a clean probe round-trip — the property under
   test is not "the fault is handled" but "the blast radius is one
   connection". *)

type fault =
  | Split_write
  | Mid_frame_disconnect
  | Garbage_frame
  | Slowloris
  | Churn

let fault_label = function
  | Split_write -> "split-write"
  | Mid_frame_disconnect -> "mid-frame-disconnect"
  | Garbage_frame -> "garbage-frame"
  | Slowloris -> "slowloris"
  | Churn -> "churn"

let all_faults =
  [ Split_write; Mid_frame_disconnect; Garbage_frame; Slowloris; Churn ]

type step_result = {
  step : int;
  fault : fault;
  detail : string;
  probe_ok : bool;  (* did a fresh connection get a clean STATUS reply? *)
}

type outcome = {
  steps : step_result list;
  survived : bool;  (* every probe answered: the loop outlived every fault *)
}

let plan ~seed ~steps =
  let rng = Rb_util.Rng.create seed in
  List.init steps (fun _ -> Rb_util.Rng.pick rng all_faults)

(* -- raw socket helpers (the point is byte-level control, so no Client) -- *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let connect_raw socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Rb_util.Retry.on_eintr (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX socket))
  with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    close_quiet fd;
    Error (Unix.error_message e)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match
        Rb_util.Retry.on_eintr (fun () ->
            Unix.write_substring fd s off (n - off))
      with
      | w -> go (off + w)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let status_frame = Wire.encode (Wire.request_to_string (Wire.Status None))

(* A full valid frame written in seeded dribbles: the decoder must yield
   the same frames for any split of the byte stream, and the reply must
   still arrive. *)
let do_split_write rng socket =
  match connect_raw socket with
  | Error e -> Printf.sprintf "connect failed: %s" e
  | Ok fd ->
    let n = String.length status_frame in
    let cuts = ref 0 in
    let off = ref 0 in
    while !off < n do
      let step = 1 + Rb_util.Rng.int rng 3 in
      let len = min step (n - !off) in
      write_all fd (String.sub status_frame !off len);
      incr cuts;
      off := !off + len
    done;
    (* wait for any reply bytes so the server demonstrably decoded it *)
    let buf = Bytes.create 256 in
    let got =
      match
        Rb_util.Retry.on_eintr (fun () ->
            Unix.read fd buf 0 (Bytes.length buf))
      with
      | k -> k
      | exception Unix.Unix_error _ -> 0
    in
    close_quiet fd;
    Printf.sprintf "%d writes, %d reply bytes" !cuts got

(* Declared length bigger than the bytes that follow, then close: the
   server holds a partial frame forever on a dead connection and must
   just reap it. *)
let do_mid_frame_disconnect rng socket =
  match connect_raw socket with
  | Error e -> Printf.sprintf "connect failed: %s" e
  | Ok fd ->
    let keep = 4 + Rb_util.Rng.int rng (max 1 (String.length status_frame - 4))
    in
    write_all fd (String.sub status_frame 0 keep);
    close_quiet fd;
    Printf.sprintf "sent %d of %d bytes" keep (String.length status_frame)

(* A header the framing layer must refuse: zero length, a length past the
   frame bound, or plain junk. The connection is forfeit; the server is
   not. *)
let do_garbage_frame rng socket =
  match connect_raw socket with
  | Error e -> Printf.sprintf "connect failed: %s" e
  | Ok fd ->
    let variant = Rb_util.Rng.int rng 3 in
    let payload =
      match variant with
      | 0 ->
        let b = Bytes.make 8 '\000' in
        Bytes.set_int32_be b 0 0l;  (* declared length 0 *)
        Bytes.unsafe_to_string b
      | 1 ->
        let b = Bytes.make 8 'x' in
        Bytes.set_int32_be b 0 (Int32.of_int (1 lsl 30));  (* over bound *)
        Bytes.unsafe_to_string b
      | _ -> String.init 16 (fun _ -> Char.chr (Rb_util.Rng.int rng 256))
    in
    write_all fd payload;
    (* the server answers with an error frame and/or drops us; either way
       the read returning (bytes or EOF) means it processed the garbage *)
    let buf = Bytes.create 256 in
    (match
       Rb_util.Retry.on_eintr (fun () -> Unix.read fd buf 0 (Bytes.length buf))
     with
    | _ -> ()
    | exception Unix.Unix_error _ -> ());
    close_quiet fd;
    Printf.sprintf "variant %d" variant

(* Ask for output, then refuse to read it for a moment: the reply must sit
   in the server's bounded outbound buffer, not block its loop. *)
let do_slowloris rng socket =
  match connect_raw socket with
  | Error e -> Printf.sprintf "connect failed: %s" e
  | Ok fd ->
    let asks = 1 + Rb_util.Rng.int rng 4 in
    for _ = 1 to asks do
      write_all fd status_frame
    done;
    Unix.sleepf 0.05;
    close_quiet fd;
    Printf.sprintf "%d unread replies" asks

(* Connections that come and go without a useful byte. *)
let do_churn rng socket =
  let n = 2 + Rb_util.Rng.int rng 4 in
  let opened = ref 0 in
  for _ = 1 to n do
    match connect_raw socket with
    | Ok fd ->
      incr opened;
      close_quiet fd
    | Error _ -> ()
  done;
  Printf.sprintf "%d/%d connections" !opened n

let apply rng socket = function
  | Split_write -> do_split_write rng socket
  | Mid_frame_disconnect -> do_mid_frame_disconnect rng socket
  | Garbage_frame -> do_garbage_frame rng socket
  | Slowloris -> do_slowloris rng socket
  | Churn -> do_churn rng socket

(* A fresh, well-behaved connection getting a clean STATUS reply is the
   survival predicate: whatever the fault broke, it was not the loop. *)
let probe ?(timeout_s = 10.0) socket =
  match Client.connect ~retries:20 ~retry_delay_s:0.05 socket with
  | Error _ -> false
  | Ok c ->
    let ok =
      match Client.request ~timeout_s c (Wire.Status None) with
      | Ok (Wire.Server _) -> true
      | Ok _ | Error _ -> false
    in
    Client.close c;
    ok

let run ?(probe_timeout_s = 10.0) ~socket ~seed ~steps () =
  let rng = Rb_util.Rng.create seed in
  let faults = plan ~seed ~steps in
  let results =
    List.mapi
      (fun i fault ->
        let detail = apply rng socket fault in
        { step = i; fault; detail;
          probe_ok = probe ~timeout_s:probe_timeout_s socket })
      faults
  in
  { steps = results; survived = List.for_all (fun r -> r.probe_ok) results }

(** Multi-tenant weighted fair queue with admission control.

    The inbound job queue is where a repair service either stays fair under
    pressure or collapses into head-of-line blocking for whichever tenant
    floods it first. This queue does three things:

    - {b Bounded admission}: at most [max_queue] jobs total; past that,
      {!admit} rejects with {!Queue_full} and the server turns it into an
      explicit BUSY + retry-after instead of buffering unboundedly.
    - {b Per-tenant quotas}: at most [quota] queued jobs per tenant, so one
      tenant cannot occupy the whole bounded queue.
    - {b Weighted fairness}: dispatch is stride scheduling over per-tenant
      FIFOs. Each tenant carries a virtual-time [pass]; {!next} picks the
      lowest pass and advances it by [cost/weight]. Cost is the job's
      case-repair count, so fairness is over service time, not job count;
      a weight-2 tenant receives twice the throughput of a weight-1 tenant
      under saturation. A tenant that was idle rejoins at the current
      virtual time — sleeping never banks credit.

    Deterministic: equal admission sequences give equal dispatch sequences
    (ties break on tenant name), which the unit tests rely on. Not
    thread-safe; the single-threaded server event loop is the only
    caller. *)

type reject =
  | Queue_full of { depth : int; limit : int }
  | Quota_exceeded of { tenant : string; queued : int; quota : int }

val reject_reason : reject -> string

type 'a t

val create : ?max_queue:int -> ?quota:int -> ?weights:(string * int) list ->
  unit -> 'a t
(** Defaults: [max_queue] 128, [quota] 64 per tenant, weight 1 for any
    tenant not listed in [weights] (listed weights are clamped to >= 1). *)

val admit :
  ?force:bool -> 'a t -> tenant:string -> cost:int -> 'a -> (int, reject) result
(** Enqueue one job of [cost] case-repairs; [Ok depth] is the queue depth
    after admission. [force] (restart re-enqueue of jobs that were already
    durably accepted) bypasses the bound and quota — an accepted job is
    never dropped by its own server's admission control. *)

val next : 'a t -> (string * 'a) option
(** Dispatch the fairest next job, or [None] when idle. *)

val depth : 'a t -> int

val tenant_depths : 'a t -> (string * int) list
(** Tenants with queued jobs, name-sorted. *)

(* -- framing ----------------------------------------------------------- *)

let default_max_frame = 1 lsl 20

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

type decoder = {
  max_frame : int;
  mutable acc : string;     (* unconsumed bytes, header-aligned at offset 0 *)
  mutable poisoned : string option;
}

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; acc = ""; poisoned = None }

let buffered d = String.length d.acc

(* Incremental: any split of the byte stream — mid-header, mid-payload —
   yields the same frames. A violation (oversized or empty declared length)
   poisons the decoder: framing is self-synchronizing only if lengths are
   trusted, so after a bad header the stream has no recoverable structure
   and the connection must be dropped. *)
let feed d chunk pos len =
  match d.poisoned with
  | Some e -> Error e
  | None ->
    d.acc <- d.acc ^ Bytes.sub_string chunk pos len;
    let frames = ref [] in
    let err = ref None in
    let continue = ref true in
    while !continue do
      let have = String.length d.acc in
      if have < 4 then continue := false
      else begin
        let declared = Int32.to_int (String.get_int32_be d.acc 0) in
        if declared <= 0 then begin
          err := Some (Printf.sprintf "bad frame length %d" declared);
          continue := false
        end
        else if declared > d.max_frame then begin
          err :=
            Some
              (Printf.sprintf "frame of %d bytes exceeds limit %d" declared
                 d.max_frame);
          continue := false
        end
        else if have < 4 + declared then continue := false
        else begin
          frames := String.sub d.acc 4 declared :: !frames;
          d.acc <- String.sub d.acc (4 + declared) (have - 4 - declared)
        end
      end
    done;
    (match !err with
    | Some e ->
      d.poisoned <- Some e;
      d.acc <- ""
    | None -> ());
    (* frames decoded before the violation are still delivered; the error
       surfaces on the next feed *)
    (match (!frames, !err) with
    | [], Some e -> Error e
    | fs, _ -> Ok (List.rev fs))

(* -- protocol messages -------------------------------------------------- *)

type request =
  | Submit of {
      tenant : string;
      backend : string;
      cases : string list option;
      opts : Exec.Campaign_opts.t option;
    }
  | Status of int option
  | Cancel of int
  | Results of int
  | Shutdown
  | Drain
  | Health

type job_state =
  | Queued of { position : int }
  | Running of { done_cases : int; total_cases : int }
  | Finished of { cases : int; passed : int; failed : string option }
  | Cancelled
  | Quarantined of { crashes : int; reason : string; last_case : string option }

type response =
  | Accepted of { id : int; queued : int }
  | Busy of { reason : string; retry_after_ms : int }
  | Rejected of { reason : string }
  | Job of { id : int; state : job_state }
  | Server of {
      queued : int;
      running : int;
      completed : int;
      cancelled : int;
      quarantined : int;
      tenants : (string * int) list;  (** tenant -> queued jobs *)
    }
  | Case of {
      id : int;
      seq : int;           (** 0-based case index within the job *)
      case : string;
      seed : int;
      report_json : string;  (** one [Report.to_json] object, verbatim *)
    }
  | Done of { id : int; cases : int; passed : int; failed : string option }
  | Quarantined_result of {
      id : int;
      crashes : int;
      reason : string;
      last_case : string option;
    }  (** RESULTS terminator for a poison job: no reports will ever come *)
  | Shutting_down of { active : int; queued : int }
  | Draining of { active : int; queued : int }
      (** admission is closed but in-flight and queued work will finish *)
  | Health of {
      queued : int;
      running : int;
      quarantined : int;
      draining : bool;
      slots : (int * string) list;  (** slot index -> state label *)
      pool : string;                (** "workers" | "in-process" *)
      worker_pids : int list;       (** live worker processes *)
      respawns : int;               (** workers respawned after a death *)
      kills_term : int;             (** watchdog SIGTERMs sent *)
      kills_kill : int;             (** watchdog SIGKILLs sent *)
      zombies : int;                (** abandoned domains (in-process mode) *)
    }
  | Error_msg of string

open Rb_util.Json

let num i = Num (float_of_int i)

let request_to_json = function
  | Submit { tenant; backend; cases; opts } ->
    Obj
      (List.concat
         [ [ ("type", Str "submit"); ("tenant", Str tenant);
             ("backend", Str backend) ];
           (match cases with
           | None -> []
           | Some cs -> [ ("cases", List (List.map (fun c -> Str c) cs)) ]);
           (match opts with
           | None -> []
           | Some o -> [ ("opts", Exec.Campaign_opts.to_wire_json o) ]) ])
  | Status None -> Obj [ ("type", Str "status") ]
  | Status (Some id) -> Obj [ ("type", Str "status"); ("id", num id) ]
  | Cancel id -> Obj [ ("type", Str "cancel"); ("id", num id) ]
  | Results id -> Obj [ ("type", Str "results"); ("id", num id) ]
  | Shutdown -> Obj [ ("type", Str "shutdown") ]
  | Drain -> Obj [ ("type", Str "drain") ]
  | Health -> Obj [ ("type", Str "health") ]

let request_of_json json =
  let ( let* ) r f = Result.bind r f in
  let* ty =
    match Option.bind (member "type" json) to_str with
    | Some t -> Ok t
    | None -> Error "request: missing \"type\""
  in
  let id () =
    match Option.bind (member "id" json) to_int with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "request %S: missing job \"id\"" ty)
  in
  match ty with
  | "submit" ->
    let str name fallback =
      match member name json with
      | None -> Ok fallback
      | Some v -> (
        match to_str v with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "submit: field %S mistyped" name))
    in
    let* tenant = str "tenant" "default" in
    let* backend = str "backend" "rustbrain" in
    let* cases =
      match member "cases" json with
      | None -> Ok None
      | Some v -> (
        match Option.map (List.map to_str) (to_list v) with
        | Some ss when not (List.mem None ss) ->
          Ok (Some (List.filter_map Fun.id ss))
        | _ -> Error "submit: field \"cases\" must be a string list")
    in
    let* opts =
      match member "opts" json with
      | None -> Ok None
      | Some o -> Result.map Option.some (Exec.Campaign_opts.of_wire_json o)
    in
    Ok (Submit { tenant; backend; cases; opts })
  | "status" -> (
    match member "id" json with
    | None -> Ok (Status None)
    | Some _ ->
      let* id = id () in
      Ok (Status (Some id)))
  | "cancel" ->
    let* id = id () in
    Ok (Cancel id)
  | "results" ->
    let* id = id () in
    Ok (Results id)
  | "shutdown" -> Ok Shutdown
  | "drain" -> Ok Drain
  | "health" -> Ok Health
  | t -> Error (Printf.sprintf "unknown request type %S" t)

let state_to_fields = function
  | Queued { position } -> [ ("state", Str "queued"); ("position", num position) ]
  | Running { done_cases; total_cases } ->
    [ ("state", Str "running"); ("done_cases", num done_cases);
      ("total_cases", num total_cases) ]
  | Finished { cases; passed; failed } ->
    [ ("state", Str "done"); ("cases", num cases); ("passed", num passed) ]
    @ (match failed with None -> [] | Some m -> [ ("failed", Str m) ])
  | Cancelled -> [ ("state", Str "cancelled") ]
  | Quarantined { crashes; reason; last_case } ->
    [ ("state", Str "quarantined"); ("crashes", num crashes);
      ("reason", Str reason) ]
    @ (match last_case with None -> [] | Some c -> [ ("last_case", Str c) ])

(* [Case] splices the already-rendered report in verbatim rather than
   re-rendering through [Json.t]: the bytes a client sees are exactly the
   bytes [Report.to_json] produced and the durable results file stores. *)
let response_to_string = function
  | Case { id; seq; case; seed; report_json } ->
    Printf.sprintf
      {|{"type":"case","id":%d,"seq":%d,"case":%s,"seed":%d,"report":%s}|} id
      seq (escape case) seed report_json
  | r ->
    to_string
      (match r with
      | Case _ -> assert false
      | Accepted { id; queued } ->
        Obj [ ("type", Str "accepted"); ("id", num id); ("queued", num queued) ]
      | Busy { reason; retry_after_ms } ->
        Obj
          [ ("type", Str "busy"); ("reason", Str reason);
            ("retry_after_ms", num retry_after_ms) ]
      | Rejected { reason } ->
        Obj [ ("type", Str "rejected"); ("reason", Str reason) ]
      | Job { id; state } ->
        Obj (( "type", Str "job") :: ("id", num id) :: state_to_fields state)
      | Server { queued; running; completed; cancelled; quarantined; tenants } ->
        Obj
          [ ("type", Str "server"); ("queued", num queued);
            ("running", num running); ("completed", num completed);
            ("cancelled", num cancelled); ("quarantined", num quarantined);
            ("tenants", Obj (List.map (fun (t, n) -> (t, num n)) tenants)) ]
      | Done { id; cases; passed; failed } ->
        Obj
          ([ ("type", Str "done"); ("id", num id); ("cases", num cases);
             ("passed", num passed) ]
          @ match failed with None -> [] | Some m -> [ ("failed", Str m) ])
      | Quarantined_result { id; crashes; reason; last_case } ->
        Obj
          ([ ("type", Str "quarantined"); ("id", num id);
             ("crashes", num crashes); ("reason", Str reason) ]
          @
          match last_case with
          | None -> []
          | Some c -> [ ("last_case", Str c) ])
      | Shutting_down { active; queued } ->
        Obj
          [ ("type", Str "shutting-down"); ("active", num active);
            ("queued", num queued) ]
      | Draining { active; queued } ->
        Obj
          [ ("type", Str "draining"); ("active", num active);
            ("queued", num queued) ]
      | Health
          { queued; running; quarantined; draining; slots; pool; worker_pids;
            respawns; kills_term; kills_kill; zombies } ->
        Obj
          [ ("type", Str "health"); ("queued", num queued);
            ("running", num running); ("quarantined", num quarantined);
            ("draining", Bool draining);
            ( "slots",
              List
                (List.map
                   (fun (i, s) -> Obj [ ("slot", num i); ("state", Str s) ])
                   slots) );
            ("pool", Str pool);
            ("worker_pids", List (List.map num worker_pids));
            ("respawns", num respawns); ("kills_term", num kills_term);
            ("kills_kill", num kills_kill); ("zombies", num zombies) ]
      | Error_msg msg -> Obj [ ("type", Str "error"); ("msg", Str msg) ])

let response_of_json json =
  let ( let* ) r f = Result.bind r f in
  let int name =
    match Option.bind (member name json) to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "response: missing %S" name)
  in
  let str name =
    match Option.bind (member name json) to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "response: missing %S" name)
  in
  let failed () = Option.bind (member "failed" json) to_str in
  let* ty = str "type" in
  match ty with
  | "accepted" ->
    let* id = int "id" in
    let* queued = int "queued" in
    Ok (Accepted { id; queued })
  | "busy" ->
    let* reason = str "reason" in
    let* retry_after_ms = int "retry_after_ms" in
    Ok (Busy { reason; retry_after_ms })
  | "rejected" ->
    let* reason = str "reason" in
    Ok (Rejected { reason })
  | "job" ->
    let* id = int "id" in
    let* state = str "state" in
    let* state =
      match state with
      | "queued" ->
        let* position = int "position" in
        Ok (Queued { position })
      | "running" ->
        let* done_cases = int "done_cases" in
        let* total_cases = int "total_cases" in
        Ok (Running { done_cases; total_cases })
      | "done" ->
        let* cases = int "cases" in
        let* passed = int "passed" in
        Ok (Finished { cases; passed; failed = failed () })
      | "cancelled" -> Ok Cancelled
      | "quarantined" ->
        let* crashes = int "crashes" in
        let* reason = str "reason" in
        Ok
          (Quarantined
             { crashes; reason;
               last_case = Option.bind (member "last_case" json) to_str })
      | s -> Error (Printf.sprintf "unknown job state %S" s)
    in
    Ok (Job { id; state })
  | "server" ->
    let* queued = int "queued" in
    let* running = int "running" in
    let* completed = int "completed" in
    let* cancelled = int "cancelled" in
    (* absent on pre-quarantine servers *)
    let quarantined =
      Option.value ~default:0 (Option.bind (member "quarantined" json) to_int)
    in
    let* tenants =
      match member "tenants" json with
      | Some (Obj fields) ->
        List.fold_right
          (fun (t, v) acc ->
            let* acc = acc in
            match to_int v with
            | Some n -> Ok ((t, n) :: acc)
            | None -> Error "response: mistyped tenant depth")
          fields (Ok [])
      | _ -> Error "response: missing \"tenants\""
    in
    Ok (Server { queued; running; completed; cancelled; quarantined; tenants })
  | "case" ->
    let* id = int "id" in
    let* seq = int "seq" in
    let* case = str "case" in
    let* seed = int "seed" in
    let* report_json =
      match member "report" json with
      | Some r -> Ok (to_string r)
      | None -> Error "response: missing \"report\""
    in
    Ok (Case { id; seq; case; seed; report_json })
  | "done" ->
    let* id = int "id" in
    let* cases = int "cases" in
    let* passed = int "passed" in
    Ok (Done { id; cases; passed; failed = failed () })
  | "quarantined" ->
    let* id = int "id" in
    let* crashes = int "crashes" in
    let* reason = str "reason" in
    Ok
      (Quarantined_result
         { id; crashes; reason;
           last_case = Option.bind (member "last_case" json) to_str })
  | "shutting-down" ->
    let* active = int "active" in
    let* queued = int "queued" in
    Ok (Shutting_down { active; queued })
  | "draining" ->
    let* active = int "active" in
    let* queued = int "queued" in
    Ok (Draining { active; queued })
  | "health" ->
    let* queued = int "queued" in
    let* running = int "running" in
    let* quarantined = int "quarantined" in
    let draining =
      Option.value ~default:false
        (Option.bind (member "draining" json) to_bool)
    in
    let slots =
      match Option.bind (member "slots" json) to_list with
      | None -> []
      | Some l ->
        List.filter_map
          (fun s ->
            match
              ( Option.bind (member "slot" s) to_int,
                Option.bind (member "state" s) to_str )
            with
            | Some i, Some st -> Some (i, st)
            | _ -> None)
          l
    in
    (* pool fields absent on pre-procpool servers: default to the only
       mode those servers had *)
    let opt_int name =
      Option.value ~default:0 (Option.bind (member name json) to_int)
    in
    let pool =
      Option.value ~default:"in-process"
        (Option.bind (member "pool" json) to_str)
    in
    let worker_pids =
      match Option.bind (member "worker_pids" json) to_list with
      | None -> []
      | Some l -> List.filter_map to_int l
    in
    Ok
      (Health
         { queued; running; quarantined; draining; slots; pool; worker_pids;
           respawns = opt_int "respawns"; kills_term = opt_int "kills_term";
           kills_kill = opt_int "kills_kill"; zombies = opt_int "zombies" })
  | "error" ->
    let* msg = str "msg" in
    Ok (Error_msg msg)
  | t -> Error (Printf.sprintf "unknown response type %S" t)

let request_to_string r = to_string (request_to_json r)

let parse_request s =
  match parse s with
  | Error e -> Error ("request: " ^ e)
  | Ok j -> request_of_json j

let parse_response s =
  match parse s with
  | Error e -> Error ("response: " ^ e)
  | Ok j -> response_of_json j

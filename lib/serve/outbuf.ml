(* Chunks are kept whole and consumed from the front with an offset, so a
   slow reader costs O(bytes) total — never the O(n^2) of repeatedly
   re-concatenating a shrinking string. *)

type t = {
  limit : int;
  chunks : string Queue.t;
  mutable head_off : int;
  mutable length : int;
}

let create ~limit = { limit; chunks = Queue.create (); head_off = 0; length = 0 }

let length t = t.length

let is_empty t = t.length = 0

let add t s =
  let n = String.length s in
  if n = 0 then true
  else if t.length + n > t.limit then false
  else begin
    Queue.add s t.chunks;
    t.length <- t.length + n;
    true
  end

let peek t =
  match Queue.peek_opt t.chunks with
  | None -> None
  | Some chunk -> Some (chunk, t.head_off)

let consume t n =
  let n = min n t.length in
  t.length <- t.length - n;
  let rec go n =
    if n > 0 then
      match Queue.peek_opt t.chunks with
      | None -> ()
      | Some chunk ->
        let left = String.length chunk - t.head_off in
        if n >= left then begin
          ignore (Queue.pop t.chunks);
          t.head_off <- 0;
          go (n - left)
        end
        else t.head_off <- t.head_off + n
  in
  go n

type t = {
  fd : Unix.file_descr;
  dec : Wire.decoder;
  mutable pending : Wire.response list;  (* decoded but not yet returned *)
}

let connect ?(retries = 50) ?(retry_delay_s = 0.1) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; dec = Wire.decoder (); pending = [] }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf retry_delay_s;
      go (n - 1)
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" path (Unix.error_message err))
  in
  go retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  let frame = Wire.encode (Wire.request_to_string req) in
  let b = Bytes.unsafe_of_string frame in
  let len = Bytes.length b in
  let rec write_all off =
    if off < len then
      match Unix.write t.fd b off (len - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error (err, _, _) ->
        failwith (Printf.sprintf "send: %s" (Unix.error_message err))
  in
  match write_all 0 with
  | () -> Ok ()
  | exception Failure e -> Error e

(* Blocking receive of the next response frame; [timeout_s] bounds the
   whole wait, not one read. *)
let recv ?(timeout_s = 30.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Bytes.create 65536 in
  let rec go () =
    match t.pending with
    | r :: rest ->
      t.pending <- rest;
      Ok r
    | [] ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then Error "recv: timeout"
      else begin
        match Unix.select [ t.fd ] [] [] left with
        | [], _, _ -> Error "recv: timeout"
        | _ -> (
          match Unix.read t.fd buf 0 (Bytes.length buf) with
          | 0 -> Error "recv: connection closed"
          | n -> (
            match Wire.feed t.dec buf 0 n with
            | Error e -> Error ("recv: " ^ e)
            | Ok frames -> (
              match
                List.fold_left
                  (fun acc payload ->
                    Result.bind acc (fun rs ->
                        Result.map
                          (fun r -> r :: rs)
                          (Wire.parse_response payload)))
                  (Ok []) frames
              with
              | Error e -> Error ("recv: " ^ e)
              | Ok rs ->
                t.pending <- t.pending @ List.rev rs;
                go ()))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (err, _, _) ->
            Error (Printf.sprintf "recv: %s" (Unix.error_message err)))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      end
  in
  go ()

let request ?timeout_s t req =
  match send t req with
  | Error e -> Error e
  | Ok () -> recv ?timeout_s t

(* Submit and ride the stream to completion: CASE frames accumulate,
   DONE ends the job. Out-of-band frames for other jobs are skipped (one
   connection normally tracks one job, but STATUS polls may interleave). *)
let run_job ?timeout_s ?(on_case = fun (_ : Wire.response) -> ()) t ~tenant
    ~backend ~cases ~opts =
  match request ?timeout_s t (Wire.Submit { tenant; backend; cases; opts }) with
  | Error e -> Error e
  | Ok (Wire.Busy { reason; retry_after_ms }) ->
    Error (Printf.sprintf "busy: %s (retry in %dms)" reason retry_after_ms)
  | Ok (Wire.Rejected { reason }) -> Error ("rejected: " ^ reason)
  | Ok (Wire.Accepted { id; _ }) ->
    let rec wait acc =
      match recv ?timeout_s t with
      | Error e -> Error e
      | Ok (Wire.Case { id = cid; _ } as frame) when cid = id ->
        on_case frame;
        wait (frame :: acc)
      | Ok (Wire.Done { id = did; cases; passed; failed }) when did = id ->
        Ok ((cases, passed, failed), List.rev acc)
      | Ok (Wire.Error_msg e) -> Error e
      | Ok _ -> wait acc
    in
    wait []
  | Ok r -> Error ("unexpected response: " ^ Wire.response_to_string r)

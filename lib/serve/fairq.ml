type reject =
  | Queue_full of { depth : int; limit : int }
  | Quota_exceeded of { tenant : string; queued : int; quota : int }

let reject_reason = function
  | Queue_full { depth; limit } ->
    Printf.sprintf "queue-full (%d/%d jobs queued)" depth limit
  | Quota_exceeded { tenant; queued; quota } ->
    Printf.sprintf "quota (%s has %d/%d jobs queued)" tenant queued quota

type 'a tenant_q = {
  name : string;
  weight : int;
  jobs : (int * 'a) Queue.t;  (* cost, payload *)
  mutable pass : float;       (* stride virtual time; lower = runs sooner *)
}

type 'a t = {
  max_queue : int;
  quota : int;
  weights : (string * int) list;
  tenants : (string, 'a tenant_q) Hashtbl.t;
  mutable depth : int;
  mutable vtime : float;  (* pass of the last dispatch *)
}

let create ?(max_queue = 128) ?(quota = 64) ?(weights = []) () =
  { max_queue; quota; weights; tenants = Hashtbl.create 8; depth = 0;
    vtime = 0.0 }

let depth t = t.depth

let tenant_depths t =
  Hashtbl.fold
    (fun name q acc ->
      if Queue.is_empty q.jobs then acc else (name, Queue.length q.jobs) :: acc)
    t.tenants []
  |> List.sort compare

let tenant_q t name =
  match Hashtbl.find_opt t.tenants name with
  | Some q -> q
  | None ->
    let weight =
      max 1 (Option.value ~default:1 (List.assoc_opt name t.weights))
    in
    (* a tenant (re)joining starts at the current virtual time, not at 0:
       an old pass would let it drain a backlog of "credit" and starve
       everyone else, which is exactly what fair queuing exists to stop *)
    let q = { name; weight; jobs = Queue.create (); pass = t.vtime } in
    Hashtbl.replace t.tenants name q;
    q

let admit ?(force = false) t ~tenant ~cost payload =
  if (not force) && t.depth >= t.max_queue then
    Error (Queue_full { depth = t.depth; limit = t.max_queue })
  else begin
    let q = tenant_q t tenant in
    let queued = Queue.length q.jobs in
    if (not force) && queued >= t.quota then
      Error (Quota_exceeded { tenant; queued; quota = t.quota })
    else begin
      (* a tenant whose queue had drained rejoins at current vtime *)
      if Queue.is_empty q.jobs then q.pass <- max q.pass t.vtime;
      Queue.add (max 1 cost, payload) q.jobs;
      t.depth <- t.depth + 1;
      Ok t.depth
    end
  end

(* Stride scheduling: dispatch the non-empty tenant with the least pass,
   then advance its pass by cost/weight. Cost-aware — a tenant submitting
   100-case jobs advances 50x faster than one submitting 2-case jobs, so
   service time (not job count) is what ends up weighted. Ties break on
   tenant name, which keeps dispatch order deterministic for tests. *)
let next t =
  let best =
    Hashtbl.fold
      (fun _ q acc ->
        if Queue.is_empty q.jobs then acc
        else
          match acc with
          | Some b when (b.pass, b.name) <= (q.pass, q.name) -> acc
          | _ -> Some q)
      t.tenants None
  in
  match best with
  | None -> None
  | Some q ->
    let cost, payload = Queue.take q.jobs in
    t.depth <- t.depth - 1;
    t.vtime <- q.pass;
    q.pass <- q.pass +. (float_of_int cost /. float_of_int q.weight);
    Some (q.name, payload)

(** Bounded per-connection outbound buffer.

    The server's event loop must never block on a write, so every byte a
    connection has been promised sits here until the socket will take it.
    Unbounded, that is a memory-exhaustion attack: a client that submits a
    large job and then stops reading (slowloris) grows the buffer forever.
    So the buffer is bounded — {!add} refuses past the limit and the
    server's policy is to evict the connection (the durable results file
    is the source of truth; a dropped stream costs the client a RESULTS
    re-fetch, not data). *)

type t

val create : limit:int -> t
(** [limit] is the maximum buffered (unwritten) byte count. *)

val add : t -> string -> bool
(** Append a fully-rendered frame; [false] means it would exceed the
    limit and nothing was buffered — evict the connection. *)

val length : t -> int
(** Bytes buffered and not yet consumed. *)

val is_empty : t -> bool

val peek : t -> (string * int) option
(** Front chunk and the offset of its first unwritten byte; [None] when
    empty. Write from here, then {!consume} what the socket took. *)

val consume : t -> int -> unit
(** Mark [n] bytes written (clamped to what is buffered). *)

(** Synthetic many-client load driver for the repair server.

    Spawns one domain per simulated tenant, each holding its own
    connection and submitting jobs back to back; BUSY responses are
    honored by sleeping the server's advised retry-after and resubmitting,
    so a saturated server is exercised through its admission control
    rather than around it. Produces the sustained jobs/sec and cases/sec
    numbers committed in [BENCH_serve.json]. *)

type config = {
  socket : string;
  tenants : int;           (** concurrent client domains *)
  jobs_per_tenant : int;
  cases_per_job : int;
  backend : string;
  opts : Exec.Campaign_opts.t option;  (** [None] = server defaults *)
  timeout_s : float;       (** per-receive patience *)
  jitter_seed : int;
      (** seeds the ±25% BUSY retry jitter that breaks the thundering
          herd: without it every rejected tenant sleeps the server's
          exact retry-after and stampedes back in lockstep. Seeded per
          tenant, so a given config replays the same schedule. *)
}

val default_config : config
(** 4 tenants x 4 jobs x 2 cases against ["llm-only"], 120s timeout,
    jitter seed 1. *)

type outcome = {
  submitted : int;
  completed : int;
  busy : int;          (** BUSY responses absorbed (each one retried) *)
  errors : int;
  cases_done : int;
  wall_s : float;
  jobs_per_s : float;
  cases_per_s : float;
  per_tenant : (string * int) list;  (** tenant -> completed jobs *)
}

val outcome_to_json : outcome -> Rb_util.Json.t

val run : config -> outcome
(** Blocks until every tenant finishes its submissions. *)

(** Job-execution core shared by both runner isolation modes.

    The in-process slot domain and the worker OS process ({!Procpool})
    both run exactly this code against the same per-job journal
    directory: resolve the backend, wrap each seeded scheduler job with
    the case-boundary guard and the streaming observer, run under
    {!Exec.Checkpoint} (resume at the journal frontier, recompute on a
    fingerprint mismatch), and stitch the reports in seed-major order.
    That sharing is what makes worker-mode and [--in-process] results
    byte-identical — the procpool-smoke gate pins the property. *)

(** Deterministic fault injection for the chaos harness: fires at every
    case boundary inside the runner. The first three vectors exist in
    both isolation modes; the last three are the worker-fault matrix —
    in worker mode each kills only the worker process. *)
type poison_mode =
  | Poison_exit   (** [Unix._exit]: the runner process dies mid-case *)
  | Poison_hang   (** sleep forever: only the watchdog reclaims the slot *)
  | Poison_raise  (** ordinary exception: isolated as a job failure *)
  | Poison_stop   (** SIGSTOP self: unsignalable by anything but SIGKILL *)
  | Poison_kill   (** SIGKILL self: instant death, no cleanup *)
  | Poison_oom    (** allocate until the address-space rlimit refuses *)

val poison_label : poison_mode -> string
val poison_of_label : string -> poison_mode option
(** Total inverse pair: [poison_of_label (poison_label m) = Some m]. *)

val apply_poison : poison_mode -> unit
(** Execute the fault. [Poison_raise] raises {!Exec.Runner.Aborted};
    the others kill, stop or hang the calling process. *)

type outcome = {
  reports : Rustbrain.Report.t list;
      (** job (seed-major, case-minor) order — the stitched order the
          durable results file stores *)
  job_failed : string option;
  replayed : int;  (** cases replayed from the journal, not recomputed *)
}

val execute :
  backend:string ->
  case_names:string list ->
  opts:Exec.Campaign_opts.t ->
  label:string ->
  journal_dir:string ->
  domains:int option ->
  before:(Dataset.Case.t -> unit) ->
  cancel:(unit -> bool) ->
  observe:(seq:int -> case:string -> seed:int -> report_json:string -> unit) ->
  unit ->
  (outcome, string) result
(** Run one job attempt end to end. [before] fires at every case
    boundary (poison injection and cooperative cancellation live there);
    [observe] fires as each case is repaired, before it is journaled
    (at-least-once streaming; the journal keeps the results file
    exactly-once). [Error] is a whole-attempt failure (unknown backend or
    case, journal damage past healing). Never writes the results file —
    that is the caller's side of the contract. *)

(* The job-execution core shared by both runner isolation modes: the
   in-process slot domain (graceful-degradation path) and the worker OS
   process both run exactly this code against the same per-job journal
   directory, which is what makes worker-mode and --in-process results
   byte-identical — the procpool-smoke gate pins that property. *)

type poison_mode =
  | Poison_exit   (* [Unix._exit]: the runner process dies mid-case *)
  | Poison_hang   (* sleep forever: only the watchdog reclaims the slot *)
  | Poison_raise  (* ordinary exception: isolated as a job failure *)
  | Poison_stop   (* SIGSTOP self: unsignalable by anything but SIGKILL *)
  | Poison_kill   (* SIGKILL self: instant death, no cleanup *)
  | Poison_oom    (* allocate until the address-space rlimit refuses *)

let poison_label = function
  | Poison_exit -> "exit"
  | Poison_hang -> "hang"
  | Poison_raise -> "raise"
  | Poison_stop -> "stop"
  | Poison_kill -> "kill"
  | Poison_oom -> "oom"

let poison_of_label = function
  | "exit" -> Some Poison_exit
  | "hang" -> Some Poison_hang
  | "raise" -> Some Poison_raise
  | "stop" -> Some Poison_stop
  | "kill" -> Some Poison_kill
  | "oom" -> Some Poison_oom
  | _ -> None

let apply_poison = function
  | Poison_exit -> Unix._exit 66
  | Poison_hang ->
    while true do
      Unix.sleepf 3600.0
    done
  | Poison_raise -> raise (Exec.Runner.Aborted "poisoned case")
  | Poison_stop -> Unix.kill (Unix.getpid ()) Sys.sigstop
  | Poison_kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
  | Poison_oom ->
    (* doubling untouched allocations: address space grows geometrically,
       so an RLIMIT_AS cap trips within ~40 iterations; the 1 TiB bound
       keeps an uncapped run from crawling the whole VA space *)
    let chunks = ref [] in
    let total = ref 0 in
    (try
       let n = ref (1 lsl 20) in
       while !total < 1 lsl 40 do
         chunks := Bytes.create !n :: !chunks;
         total := !total + !n;
         n := !n * 2
       done
     with Out_of_memory -> ());
    ignore (List.length !chunks);
    Unix._exit 137

type outcome = {
  reports : Rustbrain.Report.t list;
  job_failed : string option;
  replayed : int;
}

(* Seed fan-out through the domain-parallel scheduler, under the job's own
   write-ahead journal so a killed runner resumes at its frontier. The
   [observe] hook fires when a case is repaired, before it is journaled: a
   crash between the two can re-send a case after resume (at-least-once
   streaming); the durable results file is exactly-once. Seq is derived
   from the case's position, not a counter, so resumed remainders keep
   their absolute positions. *)
let execute ~backend ~case_names ~opts ~label ~journal_dir ~domains ~before
    ~cancel ~observe () =
  try
    let runner =
      match Exec.Campaign_opts.runner opts ~backend with
      | Ok r -> r
      | Error e -> failwith e
    in
    let cases =
      List.map
        (fun n ->
          match Dataset.Corpus.find n with
          | Some c -> c
          | None -> failwith (Printf.sprintf "unknown case %S" n))
        case_names
    in
    let case_index = Hashtbl.create 16 in
    List.iteri
      (fun i (c : Dataset.Case.t) ->
        Hashtbl.replace case_index c.Dataset.Case.name i)
      cases;
    let ncases = List.length cases in
    let jobs =
      Exec.Scheduler.seeded_jobs ~label runner
        ~seeds:opts.Exec.Campaign_opts.seeds cases
    in
    let jobs =
      List.mapi
        (fun ji (j : Exec.Scheduler.job) ->
          let seed = Exec.Runner.seed j.Exec.Scheduler.runner in
          let base = ji * ncases in
          let obs (case : Dataset.Case.t) report _stats ~snapshot:_ =
            let seq =
              base
              + Option.value ~default:0
                  (Hashtbl.find_opt case_index case.Dataset.Case.name)
            in
            observe ~seq ~case:case.Dataset.Case.name ~seed
              ~report_json:(Rustbrain.Report.to_json report)
          in
          { j with
            Exec.Scheduler.runner =
              Exec.Runner.instrumented
                (Exec.Runner.guarded j.Exec.Scheduler.runner ~before)
                ~restore:None ~observe:obs })
        jobs
    in
    let run mode =
      Exec.Checkpoint.run ?domains ~cancel ~dir:journal_dir ~mode jobs
    in
    let outcome =
      try run Exec.Checkpoint.Resume
      with Exec.Checkpoint.Fingerprint_mismatch _ ->
        (* journal from another build or a changed corpus: recompute rather
           than refuse — the accepted job must still finish *)
        run Exec.Checkpoint.Fresh
    in
    let reports =
      List.concat_map
        (fun r -> r.Exec.Scheduler.reports)
        outcome.Exec.Checkpoint.results
    in
    let job_failed =
      match Exec.Scheduler.failures outcome.Exec.Checkpoint.results with
      | [] -> None
      | (j, f) :: _ ->
        Some
          (Printf.sprintf "%s: %s" j.Exec.Scheduler.label f.Exec.Scheduler.exn)
    in
    Ok { reports; job_failed; replayed = outcome.Exec.Checkpoint.replayed }
  with e -> Error (Printexc.to_string e)

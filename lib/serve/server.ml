(* Deterministic fault injection for the chaos harness: the plan maps case
   names to the fault fired at that case's boundary inside the runner —
   the crash vectors the supervision layer must survive. Declarative (not
   a closure) so it serializes into worker Job frames and injects the same
   faults in both isolation modes. *)
type poison_mode = Jobrun.poison_mode =
  | Poison_exit
  | Poison_hang
  | Poison_raise
  | Poison_stop
  | Poison_kill
  | Poison_oom

type config = {
  socket : string;
  state_dir : string;
  runners : int;
  domains_per_job : int option;
  max_queue : int;
  quota : int;
  weights : (string * int) list;
  default_opts : Exec.Campaign_opts.t;
  tick_s : float;
  max_crashes : int;
  stall_timeout_s : float;
  job_timeout_s : float;
  abandon_grace_s : float;
  out_limit : int;
  evict_idle_s : float;
  poison : (string * poison_mode) list;
  worker_argv : string array option;
  worker_mem_mb : int;
  rng_seed : int;
  kb_dir : string option;
  kb_readonly : bool;
  trace : Obs.Trace.t option;
  metrics : Obs.Metrics.registry option;
}

let default_config =
  { socket = "rustbrain.sock";
    state_dir = "serve-state";
    runners = 2;
    domains_per_job = None;
    max_queue = 128;
    quota = 64;
    weights = [];
    default_opts = Exec.Campaign_opts.default;
    tick_s = 0.02;
    max_crashes = 3;
    stall_timeout_s = 300.0;
    job_timeout_s = 3600.0;
    abandon_grace_s = 1.0;
    out_limit = 8 * 1024 * 1024;
    evict_idle_s = 30.0;
    poison = [];
    worker_argv = None;
    worker_mem_mb = 0;
    rng_seed = 0x5eed;
    kb_dir = None;
    kb_readonly = true;
    trace = None;
    metrics = None }

type summary = {
  accepted : int;
  completed : int;
  failed : int;
  cancelled : int;
  busy : int;
  rejected : int;
  resumed : int;     (** jobs re-enqueued from the store at startup *)
  left_queued : int; (** still-durable jobs left for the next start *)
  quarantined : int; (** jobs moved to quarantine this run *)
  requeued : int;    (** watchdog/crash requeues this run *)
  evicted : int;     (** connections dropped for slow reading or overflow *)
}

(* -- job execution on an in-process runner-slot domain ------------------- *)

(* What a finished slot hands back to the event loop. Reports are in job
   (seed-major, case-minor) order — exactly the stitched order the durable
   results file stores. *)
type job_outcome = {
  reports : Rustbrain.Report.t list;
  job_failed : string option;
  replayed : int;
}

type slot = {
  sub : Store.submission;
  total_cases : int;
  started_at : float;
  stream : (int * string * int * string) Queue.t;
      (* seq, case name, seed, rendered report — filled by the runner
         domain as cases complete, drained by the event loop *)
  stream_mx : Mutex.t;
  finished : bool Atomic.t;
  cancel : bool Atomic.t;
      (* watchdog -> runner: checked at every case boundary and before
         every scheduler job claim; the cooperative half of the abort *)
  mutable last_progress : float;
      (* wall time the event loop last saw a case come off this slot *)
  mutable abort_at : float;  (* when the watchdog fired; 0.0 = it has not *)
  domain : (job_outcome, string) result Domain.t;
}

let slot_aborted s = s.abort_at > 0.0

(* The slot domain runs the whole job through the shared {!Jobrun} core —
   the same code a worker process runs, which is what keeps the two modes
   byte-identical. Durable results are written here (before the loop marks
   the job done); the event loop only does bookkeeping. *)
(* Per-tenant slice of the shared knowledge store. Tenants never see each
   other's learned entries, and a read-only server skips a tenant whose
   slice does not exist yet (the job just runs KB-less) instead of failing
   the job on a store it is forbidden to create. *)
let tenant_kb (cfg : config) ~tenant =
  match cfg.kb_dir with
  | None -> (None, cfg.kb_readonly)
  | Some root ->
    let dir = Filename.concat root tenant in
    if cfg.kb_readonly && not (Sys.file_exists dir) then (None, cfg.kb_readonly)
    else (Some dir, cfg.kb_readonly)

let start_job (cfg : config) store (sub : Store.submission) =
  let stream = Queue.create () in
  let stream_mx = Mutex.create () in
  let finished = Atomic.make false in
  let cancel = Atomic.make false in
  let total_cases =
    List.length sub.Store.cases
    * List.length sub.Store.opts.Exec.Campaign_opts.seeds
  in
  (* case-boundary guard: poison injection (chaos harness) and the
     watchdog's cooperative abort both live here, inside the runner
     domain, so neither can fire mid-case *)
  let before (case : Dataset.Case.t) =
    (match List.assoc_opt case.Dataset.Case.name cfg.poison with
    | Some m -> Jobrun.apply_poison m
    | None -> ());
    if Atomic.get cancel then raise (Exec.Runner.Aborted "watchdog abort")
  in
  let observe ~seq ~case ~seed ~report_json =
    Mutex.protect stream_mx (fun () ->
        Queue.add (seq, case, seed, report_json) stream)
  in
  let domain =
    Domain.spawn (fun () ->
        let result =
          try
            let kb_dir, kb_readonly = tenant_kb cfg ~tenant:sub.Store.tenant in
            match
              Jobrun.execute ~backend:sub.Store.backend
                ~case_names:sub.Store.cases
                ~opts:
                  { sub.Store.opts with
                    Exec.Campaign_opts.kb_dir; kb_readonly }
                ~label:(Printf.sprintf "serve/job-%06d" sub.Store.id)
                ~journal_dir:(Store.journal_dir store sub.Store.id)
                ~domains:
                  (match sub.Store.opts.Exec.Campaign_opts.domains with
                  | Some _ as d -> d
                  | None -> cfg.domains_per_job)
                ~before
                ~cancel:(fun () -> Atomic.get cancel)
                ~observe ()
            with
            | Ok o ->
              Store.write_results store sub.Store.id o.Jobrun.reports;
              Ok
                { reports = o.Jobrun.reports;
                  job_failed = o.Jobrun.job_failed;
                  replayed = o.Jobrun.replayed }
            | Error e -> Error e
          with e -> Error (Printexc.to_string e)
        in
        (* set last: once observed true, [Domain.join] returns promptly *)
        Atomic.set finished true;
        result)
  in
  let now = Unix.gettimeofday () in
  { sub; total_cases; started_at = now; stream; stream_mx; finished; cancel;
    last_progress = now; abort_at = 0.0; domain }

let slot_finished s = Atomic.get s.finished

(* -- worker-pool slots ---------------------------------------------------- *)

(* Per-attempt supervision state for a job running on a worker process. *)
type wjob = {
  wsub : Store.submission;
  w_started_at : float;
  mutable w_last_progress : float;
      (* last CASE frame or heartbeat seen from the worker *)
  mutable w_abort_at : float;  (* when the watchdog fired; 0.0 = it has not *)
  mutable w_termed : bool;     (* SIGTERM rung already climbed *)
  mutable w_killed : bool;     (* SIGKILL rung already climbed *)
}

type wstate =
  | W_down of { next_spawn_at : float }  (* no process; spawn when due *)
  | W_starting of { w : Procpool.worker; since : float }  (* awaiting Hello *)
  | W_ready of { w : Procpool.worker }
  | W_busy of { w : Procpool.worker; job : wjob }

type wslot = {
  mutable ws : wstate;
  mutable failures : int;
      (* consecutive deaths without a cleanly completed job: the respawn
         backoff exponent *)
}

(* Runner isolation mode. [Workers] is the production path: every slot is
   a supervised child process the watchdog can always SIGKILL, so there is
   no zombie list. [In_process] (--in-process, or automatic fallback when
   spawning fails) keeps the domain path: cooperative aborts only, hung
   domains abandoned as zombies. *)
type pool =
  | In_process
  | Workers of wslot array

let worker_of ws =
  match ws.ws with
  | W_down _ -> None
  | W_starting { w; _ } | W_ready { w } | W_busy { w; _ } -> Some w

let wjob_of ws = match ws.ws with W_busy { job; _ } -> Some job | _ -> None

(* -- connections -------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  cid : int;
  dec : Wire.decoder;
  out : Outbuf.t;                 (* bytes accepted but not yet written *)
  mutable last_flush : float;     (* last time the socket took any bytes *)
  mutable close_after_flush : bool;
  mutable closed : bool;
}

(* -- server state -------------------------------------------------------- *)

type t = {
  cfg : config;
  store : Store.t;
  queue : Store.submission Fairq.t;
  conns : (int, conn) Hashtbl.t;
  subscribers : (int, int) Hashtbl.t;  (* job id -> conn id *)
  mutable pool : pool;
  rng : Rb_util.Rng.t;  (* respawn-backoff jitter; seeded, deterministic *)
  sigchld_w : Unix.file_descr;
      (* write end of the SIGCHLD self-pipe: the handler writes one byte,
         the select loop wakes and reaps *)
  mutable slots : slot list;
  mutable zombies : slot list;
      (* in-process mode only: abandoned hung runner domains — OCaml
         domains cannot be killed, so they are parked here and reaped
         (joined) only once their finished flag flips. The worker pool
         deleted this failure class: a hung worker is SIGKILLed. *)
  mutable shutting_down : bool;
  mutable draining : bool;
  mutable next_cid : int;
  mutable service_ewma_ms : float;  (* per-job wall service time estimate *)
  mutable ever_ready : bool;
      (* any worker ever completed the handshake; gates the automatic
         in-process fallback *)
  mutable spawn_fail_streak : int;
  mutable accepted : int;
  mutable completed : int;
  mutable failed : int;
  mutable cancelled : int;
  mutable busy : int;
  mutable rejected : int;
  mutable resumed : int;
  mutable quarantined_n : int;
  mutable requeued : int;
  mutable evicted : int;
  mutable respawns : int;
  mutable kills_term : int;
  mutable kills_kill : int;
}

(* Every reply — results streams, error replies, BUSY — goes through the
   connection's bounded outbound buffer; a client the buffer cannot absorb
   is evicted rather than allowed to wedge or balloon the server. The
   durable results file makes that safe: eviction costs the client a
   RESULTS re-fetch, never data. *)
let send t conn resp =
  if not conn.closed then
    if not (Outbuf.add conn.out (Wire.encode (Wire.response_to_string resp)))
    then begin
      t.evicted <- t.evicted + 1;
      conn.closed <- true
    end

let trace_event t name attrs =
  match t.cfg.trace with
  | None -> ()
  | Some sink -> Obs.Trace.event sink ~attrs name

let metric_inc t name =
  match t.cfg.metrics with
  | None -> ()
  | Some reg -> Obs.Metrics.(incr (counter reg name))

let metric_gauge t name v =
  match t.cfg.metrics with
  | None -> ()
  | Some reg -> Obs.Metrics.(set (gauge reg name) v)

let metric_observe t name v =
  match t.cfg.metrics with
  | None -> ()
  | Some reg ->
    Obs.Metrics.(
      observe
        (histogram
           ~buckets:[| 10.; 100.; 1000.; 5000.; 20000.; 60000.; 300000. |]
           reg name)
        v)

let active_jobs t =
  match t.pool with
  | In_process -> List.length t.slots
  | Workers ws ->
    Array.fold_left
      (fun n s -> match s.ws with W_busy _ -> n + 1 | _ -> n)
      0 ws

(* Backpressure advice: how long a rejected client should wait before
   retrying. Scales with how much service time is queued ahead of it
   divided by the slots that will drain it; clamped so a cold server never
   says 0 and a drowning one never says "come back in an hour". *)
let retry_after_ms t =
  let queued = float_of_int (Fairq.depth t.queue + active_jobs t) in
  let per_slot = queued /. float_of_int (max 1 t.cfg.runners) in
  int_of_float (Float.min 30000. (Float.max 50. (t.service_ewma_ms *. per_slot)))

let job_cost (sub : Store.submission) =
  List.length sub.cases * List.length sub.opts.seeds

let running_ids t =
  match t.pool with
  | In_process -> List.map (fun s -> s.sub.Store.id) t.slots
  | Workers ws ->
    Array.to_list ws
    |> List.filter_map (fun s ->
           Option.map (fun j -> j.wsub.Store.id) (wjob_of s))

let is_running t id = List.mem id (running_ids t)

let worker_pids t =
  match t.pool with
  | In_process -> []
  | Workers ws ->
    Array.to_list ws
    |> List.filter_map (fun s ->
           match worker_of s with
           | Some w when w.alive -> Some w.pid
           | _ -> None)

let pool_label t =
  match t.pool with In_process -> "in-process" | Workers _ -> "workers"

(* -- request handling ---------------------------------------------------- *)

let corpus_names () =
  List.map (fun (c : Dataset.Case.t) -> c.Dataset.Case.name) Dataset.Corpus.all

let handle_submit t conn ~tenant ~backend ~cases ~opts =
  if t.shutting_down || t.draining then begin
    t.busy <- t.busy + 1;
    metric_inc t "serve.busy";
    send t conn
      (Wire.Busy
         { reason = (if t.draining then "draining" else "shutting-down");
           retry_after_ms = retry_after_ms t })
  end
  else begin
    let opts = Option.value ~default:t.cfg.default_opts opts in
    let case_names = Option.value ~default:(corpus_names ()) cases in
    let unknown =
      List.filter (fun n -> Dataset.Corpus.find n = None) case_names
    in
    match Exec.Campaign_opts.validate opts with
    | Error reason ->
      t.rejected <- t.rejected + 1;
      metric_inc t "serve.rejected";
      send t conn (Wire.Rejected { reason })
    | Ok opts ->
      if case_names = [] then begin
        t.rejected <- t.rejected + 1;
        metric_inc t "serve.rejected";
        send t conn (Wire.Rejected { reason = "empty case list" })
      end
      else if unknown <> [] then begin
        t.rejected <- t.rejected + 1;
        metric_inc t "serve.rejected";
        send t conn
          (Wire.Rejected
             { reason =
                 Printf.sprintf "unknown case(s): %s"
                   (String.concat ", " unknown) })
      end
      else begin
        match Exec.Campaign_opts.runner opts ~backend with
        | Error reason ->
          t.rejected <- t.rejected + 1;
          metric_inc t "serve.rejected";
          send t conn (Wire.Rejected { reason })
        | Ok _ ->
          let cost = List.length case_names * List.length opts.seeds in
          (* admission-control decision first: only an admitted job is
             made durable, so BUSY never leaks a state file *)
          let decision =
            if Fairq.depth t.queue >= t.cfg.max_queue then
              Error
                (Fairq.Queue_full
                   { depth = Fairq.depth t.queue; limit = t.cfg.max_queue })
            else Ok ()
          in
          (match decision with
          | Error reject ->
            t.busy <- t.busy + 1;
            metric_inc t "serve.busy";
            trace_event t "serve-busy"
              [ ("tenant", Obs.Trace.S tenant);
                ("reason", Obs.Trace.S (Fairq.reject_reason reject)) ];
            send t conn
              (Wire.Busy
                 { reason = Fairq.reject_reason reject;
                   retry_after_ms = retry_after_ms t })
          | Ok () -> (
            (* durable admission: the store record lands (fsynced) before
               ACCEPTED is even queued for write *)
            let sub =
              Store.admit t.store ~tenant ~backend ~cases:case_names ~opts
            in
            match Fairq.admit t.queue ~tenant ~cost sub with
            | Error reject ->
              (* quota rejection after the durable write would strand the
                 record; cancel it durably so the store stays truthful *)
              ignore (Store.cancel t.store sub.Store.id);
              t.busy <- t.busy + 1;
              metric_inc t "serve.busy";
              send t conn
                (Wire.Busy
                   { reason = Fairq.reject_reason reject;
                     retry_after_ms = retry_after_ms t })
            | Ok depth ->
              t.accepted <- t.accepted + 1;
              metric_inc t "serve.accepted";
              metric_gauge t "serve.queue_depth" (float_of_int depth);
              Hashtbl.replace t.subscribers sub.Store.id conn.cid;
              trace_event t "serve-admit"
                [ ("id", Obs.Trace.I sub.Store.id);
                  ("tenant", Obs.Trace.S tenant);
                  ("cost", Obs.Trace.I cost);
                  ("depth", Obs.Trace.I depth) ];
              send t conn (Wire.Accepted { id = sub.Store.id; queued = depth })))
      end
  end

let queued_position t id =
  (* jobs still queued ahead of [id], by admission order — approximate
     (fair queuing may dispatch a later tenant first) but monotone *)
  List.length
    (List.filter
       (fun (s : Store.submission) ->
         s.Store.id < id && not (is_running t s.Store.id))
       (Store.pending t.store))

let job_status t id =
  match Store.status t.store id with
  | None -> None
  | Some (Store.Done c) ->
    Some
      (Wire.Finished
         { cases = c.Store.cases; passed = c.Store.passed;
           failed = c.Store.failed })
  | Some Store.Cancelled -> Some Wire.Cancelled
  | Some (Store.Quarantined q) ->
    Some
      (Wire.Quarantined
         { crashes = q.Store.crashes; reason = q.Store.reason;
           last_case = q.Store.last_case })
  | Some Store.Queued ->
    if is_running t id then
      let total =
        match Store.submission t.store id with
        | Some sub -> job_cost sub
        | None -> 0
      in
      Some
        (Wire.Running
           { done_cases = Store.progress t.store id; total_cases = total })
    else Some (Wire.Queued { position = queued_position t id })

let handle_status t conn = function
  | Some id -> (
    match job_status t id with
    | Some state -> send t conn (Wire.Job { id; state })
    | None ->
      send t conn (Wire.Error_msg (Printf.sprintf "unknown job id %d" id)))
  | None ->
    let queued, completed, cancelled, quarantined = Store.counts t.store in
    let running = active_jobs t in
    send t conn
      (Wire.Server
         { queued = max 0 (queued - running);
           running;
           completed;
           cancelled;
           quarantined;
           tenants = Fairq.tenant_depths t.queue })

let handle_cancel t conn id =
  if is_running t id then
    send t conn (Wire.Rejected { reason = Printf.sprintf "job %d is running" id })
  else if Store.cancel t.store id then begin
    t.cancelled <- t.cancelled + 1;
    metric_inc t "serve.cancelled";
    trace_event t "serve-cancel" [ ("id", Obs.Trace.I id) ];
    send t conn (Wire.Job { id; state = Wire.Cancelled })
  end
  else
    send t conn
      (Wire.Rejected { reason = Printf.sprintf "job %d not cancellable" id })

let handle_results t conn id =
  match (Store.status t.store id, Store.submission t.store id) with
  | Some (Store.Quarantined q), _ ->
    (* terminator, not an error: the job is poison, no reports will ever
       come — the client should stop waiting and a human should triage *)
    send t conn
      (Wire.Quarantined_result
         { id; crashes = q.Store.crashes; reason = q.Store.reason;
           last_case = q.Store.last_case })
  | Some (Store.Done c), Some sub -> (
    match Store.read_results t.store id with
    | None -> send t conn (Wire.Error_msg "results file missing")
    | Some text ->
      let lines =
        String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
      in
      let ncases = max 1 (List.length sub.Store.cases) in
      List.iteri
        (fun seq line ->
          let case =
            match Rb_util.Json.parse line with
            | Ok j ->
              Option.value ~default:""
                (Option.bind (Rb_util.Json.member "case" j) Rb_util.Json.to_str)
            | Error _ -> ""
          in
          let seed =
            match List.nth_opt sub.Store.opts.Exec.Campaign_opts.seeds (seq / ncases) with
            | Some s -> s
            | None -> 0
          in
          send t conn (Wire.Case { id; seq; case; seed; report_json = line }))
        lines;
      send t conn
        (Wire.Done
           { id; cases = c.Store.cases; passed = c.Store.passed;
             failed = c.Store.failed }))
  | Some state, _ -> (
    ignore state;
    match job_status t id with
    | Some s -> send t conn (Wire.Job { id; state = s })
    | None -> send t conn (Wire.Error_msg (Printf.sprintf "unknown job id %d" id)))
  | None, _ ->
    send t conn (Wire.Error_msg (Printf.sprintf "unknown job id %d" id))

let slot_states t =
  match t.pool with
  | In_process ->
    let running =
      List.mapi
        (fun i s ->
          ( i,
            Printf.sprintf "%s job %d"
              (if slot_aborted s then "hung" else "running")
              s.sub.Store.id ))
        t.slots
    in
    let n = List.length running in
    running @ List.init (max 0 (t.cfg.runners - n)) (fun i -> (n + i, "idle"))
  | Workers ws ->
    Array.to_list
      (Array.mapi
         (fun i s ->
           ( i,
             match s.ws with
             | W_down _ -> "down"
             | W_starting _ -> "starting"
             | W_ready _ -> "idle"
             | W_busy { w; job } ->
               Printf.sprintf "%s job %d (pid %d)"
                 (if job.w_abort_at > 0.0 then "hung" else "running")
                 job.wsub.Store.id w.pid ))
         ws)

let handle_request t conn = function
  | Wire.Submit { tenant; backend; cases; opts } ->
    handle_submit t conn ~tenant ~backend ~cases ~opts
  | Wire.Status id -> handle_status t conn id
  | Wire.Cancel id -> handle_cancel t conn id
  | Wire.Results id -> handle_results t conn id
  | Wire.Health ->
    let _, _, _, quarantined = Store.counts t.store in
    send t conn
      (Wire.Health
         { queued = Fairq.depth t.queue;
           running = active_jobs t;
           quarantined;
           draining = t.draining;
           slots = slot_states t;
           pool = pool_label t;
           worker_pids = worker_pids t;
           respawns = t.respawns;
           kills_term = t.kills_term;
           kills_kill = t.kills_kill;
           zombies = List.length t.zombies })
  | Wire.Drain ->
    t.draining <- true;
    trace_event t "serve-drain"
      [ ("active", Obs.Trace.I (active_jobs t));
        ("queued", Obs.Trace.I (Fairq.depth t.queue)) ];
    send t conn
      (Wire.Draining
         { active = active_jobs t; queued = Fairq.depth t.queue })
  | Wire.Shutdown ->
    t.shutting_down <- true;
    trace_event t "serve-shutdown"
      [ ("active", Obs.Trace.I (active_jobs t));
        ("queued", Obs.Trace.I (Fairq.depth t.queue)) ];
    send t conn
      (Wire.Shutting_down
         { active = active_jobs t; queued = Fairq.depth t.queue })

(* -- slot lifecycle ------------------------------------------------------ *)

let subscriber_conn t id =
  Option.bind (Hashtbl.find_opt t.subscribers id) (fun cid ->
      match Hashtbl.find_opt t.conns cid with
      | Some c when not c.closed -> Some c
      | _ -> None)

let drain_stream t slot =
  let items =
    Mutex.protect slot.stream_mx (fun () ->
        let xs = List.of_seq (Queue.to_seq slot.stream) in
        Queue.clear slot.stream;
        xs)
  in
  if items <> [] then slot.last_progress <- Unix.gettimeofday ();
  match subscriber_conn t slot.sub.Store.id with
  | None -> ()
  | Some conn ->
    List.iter
      (fun (seq, case, seed, report_json) ->
        metric_inc t "serve.cases.streamed";
        send t conn
          (Wire.Case { id = slot.sub.Store.id; seq; case; seed; report_json }))
      items

(* Durably mark the job poison and tell whoever is waiting. From here the
   job never runs again: excluded from pending/dispatch, its journal and
   crash record preserved under the state dir for triage. *)
let quarantine_job t (sub : Store.submission) ~reason ~backtrace =
  let id = sub.Store.id in
  let q = Store.quarantine t.store id ~reason ~backtrace in
  t.quarantined_n <- t.quarantined_n + 1;
  metric_inc t "serve.quarantined";
  trace_event t "serve-quarantine"
    [ ("id", Obs.Trace.I id);
      ("crashes", Obs.Trace.I q.Store.crashes);
      ("reason", Obs.Trace.S reason) ];
  (match subscriber_conn t id with
  | None -> ()
  | Some conn ->
    send t conn
      (Wire.Quarantined_result
         { id; crashes = q.Store.crashes; reason = q.Store.reason;
           last_case = q.Store.last_case }));
  Hashtbl.remove t.subscribers id

(* A job whose attempt ended in a crash (dead worker process, dead runner
   domain, watchdog abandonment) either re-enters the queue — resuming at
   its journal frontier, so completed cases are never redone — or, past
   the crash budget, is quarantined as poison. *)
let requeue_or_quarantine t (sub : Store.submission) ~reason ~backtrace =
  if Store.crash_count t.store sub.Store.id >= t.cfg.max_crashes then
    quarantine_job t sub ~reason ~backtrace
  else begin
    t.requeued <- t.requeued + 1;
    metric_inc t "serve.jobs.requeued";
    trace_event t "serve-requeue"
      [ ("id", Obs.Trace.I sub.Store.id);
        ("crashes", Obs.Trace.I (Store.crash_count t.store sub.Store.id));
        ("reason", Obs.Trace.S reason) ];
    ignore
      (Fairq.admit ~force:true t.queue ~tenant:sub.Store.tenant
         ~cost:(job_cost sub) sub)
  end

(* -- worker-pool supervision --------------------------------------------- *)

let close_worker_fd (w : Procpool.worker) =
  if w.Procpool.alive then begin
    w.Procpool.alive <- false;
    try Unix.close w.Procpool.fd with Unix.Unix_error _ -> ()
  end

let kill_quiet pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

let worker_down t wslot ~crashed =
  if crashed then wslot.failures <- wslot.failures + 1;
  wslot.ws <-
    W_down
      { next_spawn_at =
          (if wslot.failures = 0 then 0.0
           else
             Unix.gettimeofday ()
             +. Procpool.backoff_delay ~failures:wslot.failures t.rng) }

(* Spawning never worked at all (no fork on this platform, bad argv,
   exhausted pids): degrade to the in-process domain pool rather than
   spin. Only before the first successful handshake — once workers have
   ever run, chronic respawn failure stays supervised under backoff. *)
let maybe_fallback t =
  if (not t.ever_ready) && t.spawn_fail_streak >= 3 then
    match t.pool with
    | In_process -> ()
    | Workers ws ->
      Array.iter
        (fun s ->
          (match worker_of s with
          | Some w ->
            close_worker_fd w;
            kill_quiet w.Procpool.pid Sys.sigkill
          | None -> ());
          s.ws <- W_down { next_spawn_at = infinity })
        ws;
      t.pool <- In_process;
      metric_inc t "serve.pool.fallback";
      trace_event t "serve-pool-fallback" [];
      prerr_endline
        "serve: worker spawning keeps failing; falling back to in-process runners"

let spawn_worker t wslot =
  match t.cfg.worker_argv with
  | None -> ()
  | Some argv -> (
    (* RLIMIT_CPU from the job wall ceiling: per attempt, since a worker
       runs exactly one job. Skipped for effectively-unbounded budgets. *)
    let cpu_s =
      if t.cfg.job_timeout_s > 0.0 && t.cfg.job_timeout_s <= 86400.0 then
        int_of_float (Float.ceil t.cfg.job_timeout_s) + 5
      else 0
    in
    match Procpool.spawn ~argv ~mem_mb:t.cfg.worker_mem_mb ~cpu_s () with
    | Ok w ->
      if wslot.failures > 0 then begin
        t.respawns <- t.respawns + 1;
        metric_inc t "serve.workers.respawned"
      end;
      metric_inc t "serve.workers.spawned";
      wslot.ws <- W_starting { w; since = Unix.gettimeofday () }
    | Error e ->
      if not t.ever_ready then t.spawn_fail_streak <- t.spawn_fail_streak + 1;
      trace_event t "serve-worker-spawn-failed" [ ("err", Obs.Trace.S e) ];
      worker_down t wslot ~crashed:true;
      maybe_fallback t)

let finish_worker_job t (job : wjob) ~cases ~passed ~failed ~replayed =
  let id = job.wsub.Store.id in
  if job.w_abort_at > 0.0 && failed <> None then
    (* the cooperative abort landed at a case boundary: the journal holds
       every completed case, the attempt itself was a watchdog kill *)
    requeue_or_quarantine t job.wsub ~reason:"aborted by watchdog"
      ~backtrace:""
  else begin
    let service_ms = (Unix.gettimeofday () -. job.w_started_at) *. 1000.0 in
    t.service_ewma_ms <- (0.7 *. t.service_ewma_ms) +. (0.3 *. service_ms);
    metric_observe t "serve.service_ms" service_ms;
    metric_observe t
      (Printf.sprintf "serve.service_ms.%s" job.wsub.Store.tenant)
      service_ms;
    if replayed > 0 then metric_inc t "serve.jobs.resumed";
    (* the worker wrote the durable results file before sending Done *)
    let completion = { Store.cases; passed; failed } in
    Store.complete t.store id completion;
    (match failed with
    | None ->
      t.completed <- t.completed + 1;
      metric_inc t "serve.completed"
    | Some _ ->
      t.failed <- t.failed + 1;
      metric_inc t "serve.failed");
    trace_event t "serve-job-done"
      [ ("id", Obs.Trace.I id);
        ("cases", Obs.Trace.I cases);
        ("passed", Obs.Trace.I passed);
        ("failed", Obs.Trace.B (failed <> None)) ];
    (match subscriber_conn t id with
    | None -> ()
    | Some conn -> send t conn (Wire.Done { id; cases; passed; failed }));
    Hashtbl.remove t.subscribers id
  end

let handle_worker_msg t wslot msg =
  let now = Unix.gettimeofday () in
  match (msg : Procpool.to_server) with
  | Procpool.Hello _ -> (
    match wslot.ws with
    | W_starting { w; _ } ->
      wslot.ws <- W_ready { w };
      t.ever_ready <- true;
      t.spawn_fail_streak <- 0
    | _ -> ())
  | Procpool.Heartbeat -> (
    match wslot.ws with
    | W_busy { job; _ } -> job.w_last_progress <- now
    | _ -> ())
  | Procpool.Case_done { seq; case; seed; report_json } -> (
    match wslot.ws with
    | W_busy { job; _ } -> (
      job.w_last_progress <- now;
      match subscriber_conn t job.wsub.Store.id with
      | None -> ()
      | Some conn ->
        metric_inc t "serve.cases.streamed";
        send t conn
          (Wire.Case
             { id = job.wsub.Store.id; seq; case; seed; report_json }))
    | _ -> ())
  | Procpool.Job_done { cases; passed; failed; replayed } -> (
    match wslot.ws with
    | W_busy { w; job } ->
      (* one worker process per job attempt: the worker exits after Done
         and a fresh process (fresh rlimit budget, no state bleed)
         replaces it immediately *)
      close_worker_fd w;
      wslot.failures <- 0;
      worker_down t wslot ~crashed:false;
      finish_worker_job t job ~cases ~passed ~failed ~replayed
    | _ -> ())

let read_worker t wslot =
  match worker_of wslot with
  | None -> ()
  | Some w when not w.Procpool.alive -> ()
  | Some w ->
    let buf = Bytes.create 65536 in
    let rec go () =
      match Unix.read w.Procpool.fd buf 0 (Bytes.length buf) with
      | 0 ->
        (* EOF: stop selecting on it; crash accounting happens at reap *)
        close_worker_fd w
      | n -> (
        match Wire.feed w.Procpool.dec buf 0 n with
        | Error _ ->
          (* a worker that breaks framing is not trustworthy: kill it;
             the reap turns this into ordinary crash accounting *)
          close_worker_fd w;
          kill_quiet w.Procpool.pid Sys.sigkill
        | Ok frames ->
          List.iter
            (fun payload ->
              match Procpool.to_server_of_string payload with
              | Ok m -> handle_worker_msg t wslot m
              | Error _ -> ())
            frames;
          if w.Procpool.alive then go ())
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> close_worker_fd w
    in
    go ()

(* Unix.WSIGNALED carries OCaml's internal signal numbers (negative for
   the Sys.sig* set); translate the ones supervision produces into the
   conventional OS numbers so quarantine reasons read "signal 9", not
   "signal -7". *)
let os_signal s =
  if s = Sys.sigkill then 9
  else if s = Sys.sigterm then 15
  else if s = Sys.sigsegv then 11
  else if s = Sys.sigabrt then 6
  else if s = Sys.sigint then 2
  else if s = Sys.sighup then 1
  else if s = Sys.sigquit then 3
  else if s = Sys.sigbus then 7
  else if s = Sys.sigxcpu then 24
  else if s = Sys.sigxfsz then 25
  else if s = Sys.sigstop then 19
  else s

let describe_status = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" (os_signal s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" (os_signal s)

let handle_worker_death t ws pid status =
  Array.iter
    (fun wslot ->
      match worker_of wslot with
      | Some w when w.Procpool.pid = pid -> (
        (* drain frames the worker flushed before dying — CASE frames, or
           a Job_done racing its own exit (then the slot is already
           recycled below and this death is routine) *)
        if w.Procpool.alive then read_worker t wslot;
        match wslot.ws with
        | W_busy { w; job } ->
          (* died without Job_done: a crashed attempt. SIGKILLed, OOM
             (rlimit), poison exit — all count toward quarantine. *)
          close_worker_fd w;
          worker_down t wslot ~crashed:true;
          metric_inc t "serve.runner_crashes";
          trace_event t "serve-worker-crash"
            [ ("id", Obs.Trace.I job.wsub.Store.id);
              ("pid", Obs.Trace.I pid);
              ("status", Obs.Trace.S (describe_status status)) ];
          requeue_or_quarantine t job.wsub
            ~reason:
              (Printf.sprintf "worker pid %d died (%s)%s" pid
                 (describe_status status)
                 (if job.w_killed then " after watchdog SIGKILL"
                  else if job.w_termed then " after watchdog SIGTERM"
                  else ""))
            ~backtrace:""
        | W_starting _ ->
          (* died before Hello: exec failure (exit 127) or early crash *)
          if not t.ever_ready then
            t.spawn_fail_streak <- t.spawn_fail_streak + 1;
          (match worker_of wslot with
          | Some w -> close_worker_fd w
          | None -> ());
          worker_down t wslot ~crashed:true;
          trace_event t "serve-worker-died-early"
            [ ("pid", Obs.Trace.I pid);
              ("status", Obs.Trace.S (describe_status status)) ];
          maybe_fallback t
        | W_ready _ ->
          (match worker_of wslot with
          | Some w -> close_worker_fd w
          | None -> ());
          worker_down t wslot ~crashed:true;
          trace_event t "serve-worker-died-idle"
            [ ("pid", Obs.Trace.I pid);
              ("status", Obs.Trace.S (describe_status status)) ]
        | W_down _ -> () (* recycled after Job_done: routine *))
      | _ -> ())
    ws

(* Reap every dead child (SIGCHLD self-pipe wakes the loop; this also runs
   each tick as a belt-and-braces sweep) and turn worker deaths into slot
   state transitions and crash accounting. *)
let reap_children t =
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | pid, status ->
      (match t.pool with
      | Workers ws -> handle_worker_death t ws pid status
      | In_process -> ());
      go ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let find_ready ws =
  let found = ref None in
  Array.iter
    (fun s ->
      match !found with
      | Some _ -> ()
      | None -> ( match s.ws with W_ready { w } -> found := Some (s, w) | _ -> ()))
    ws;
  !found

let dispatch t =
  (match t.pool with
  | In_process ->
    let continue = ref true in
    while !continue && List.length t.slots < t.cfg.runners do
      match Fairq.next t.queue with
      | None -> continue := false
      | Some (_tenant, sub) -> (
        match Store.status t.store sub.Store.id with
        | Some Store.Queued ->
          if Store.crash_count t.store sub.Store.id >= t.cfg.max_crashes then
            (* the crash budget can be exhausted while the job sits queued —
               e.g. counted across whole-server kills — never hand it to
               another runner *)
            quarantine_job t sub
              ~reason:
                (Printf.sprintf "crashed its runner %d times"
                   (Store.crash_count t.store sub.Store.id))
              ~backtrace:""
          else begin
            trace_event t "serve-dispatch"
              [ ("id", Obs.Trace.I sub.Store.id);
                ("tenant", Obs.Trace.S sub.Store.tenant) ];
            (* durable before the spawn: if this attempt dies with the whole
               process, the next start still counts it *)
            Store.begin_attempt t.store sub.Store.id;
            t.slots <- t.slots @ [ start_job t.cfg t.store sub ]
          end
        | _ -> () (* cancelled while queued: drained, never started *))
    done
  | Workers ws ->
    let continue = ref true in
    while !continue do
      match find_ready ws with
      | None -> continue := false
      | Some (wslot, w) -> (
        match Fairq.next t.queue with
        | None -> continue := false
        | Some (_tenant, sub) -> (
          match Store.status t.store sub.Store.id with
          | Some Store.Queued ->
            if Store.crash_count t.store sub.Store.id >= t.cfg.max_crashes
            then
              quarantine_job t sub
                ~reason:
                  (Printf.sprintf "crashed its runner %d times"
                     (Store.crash_count t.store sub.Store.id))
                ~backtrace:""
            else begin
              trace_event t "serve-dispatch"
                [ ("id", Obs.Trace.I sub.Store.id);
                  ("tenant", Obs.Trace.S sub.Store.tenant) ];
              (* durable before the dispatch: if this attempt dies with
                 its worker, the next requeue still counts it *)
              Store.begin_attempt t.store sub.Store.id;
              let kb_dir, kb_readonly =
                tenant_kb t.cfg ~tenant:sub.Store.tenant
              in
              let spec =
                { Procpool.id = sub.Store.id;
                  backend = sub.Store.backend;
                  cases = sub.Store.cases;
                  opts = sub.Store.opts;
                  journal_dir = Store.journal_dir t.store sub.Store.id;
                  results_path = Store.results_path t.store sub.Store.id;
                  domains =
                    (match sub.Store.opts.Exec.Campaign_opts.domains with
                    | Some _ as d -> d
                    | None -> t.cfg.domains_per_job);
                  poison = t.cfg.poison;
                  kb_dir; kb_readonly }
              in
              if Procpool.send w (Procpool.Job spec) then begin
                let now = Unix.gettimeofday () in
                wslot.ws <-
                  W_busy
                    { w;
                      job =
                        { wsub = sub; w_started_at = now;
                          w_last_progress = now; w_abort_at = 0.0;
                          w_termed = false; w_killed = false } }
              end
              else begin
                (* the worker would not take the frame: not a job crash —
                   undo the attempt, requeue the job, replace the worker *)
                Store.end_attempt t.store sub.Store.id;
                ignore
                  (Fairq.admit ~force:true t.queue ~tenant:sub.Store.tenant
                     ~cost:(job_cost sub) sub);
                close_worker_fd w;
                kill_quiet w.Procpool.pid Sys.sigkill;
                worker_down t wslot ~crashed:true
              end
            end
          | _ -> ()))
    done);
  metric_gauge t "serve.queue_depth" (float_of_int (Fairq.depth t.queue));
  metric_gauge t "serve.active" (float_of_int (active_jobs t))

(* Worker watchdog and lifecycle pass, once per tick. Escalation ladder on
   a stalled or over-budget job: cooperative Cancel frame at t0, SIGTERM
   at t0 + grace/2, SIGKILL at t0 + grace — so a SIGSTOP'd or hard-hung
   worker is gone within stall_timeout + grace, the bound the chaos
   worker-fault matrix asserts. *)
let poll_workers t =
  match t.pool with
  | In_process -> ()
  | Workers ws ->
    let now = Unix.gettimeofday () in
    Array.iter
      (fun wslot ->
        match wslot.ws with
        | W_busy { w; job } ->
          if job.w_abort_at = 0.0 then begin
            let stalled = now -. job.w_last_progress > t.cfg.stall_timeout_s in
            let over = now -. job.w_started_at > t.cfg.job_timeout_s in
            if stalled || over then begin
              job.w_abort_at <- now;
              metric_inc t "serve.watchdog.fired";
              trace_event t "serve-watchdog"
                [ ("id", Obs.Trace.I job.wsub.Store.id);
                  ( "why",
                    Obs.Trace.S (if stalled then "stalled" else "over-budget")
                  ) ];
              ignore (Procpool.send w Procpool.Cancel)
            end
          end
          else begin
            let dt = now -. job.w_abort_at in
            if (not job.w_termed) && dt > 0.5 *. t.cfg.abandon_grace_s then begin
              job.w_termed <- true;
              t.kills_term <- t.kills_term + 1;
              metric_inc t "serve.workers.sigterm";
              trace_event t "serve-worker-term"
                [ ("id", Obs.Trace.I job.wsub.Store.id);
                  ("pid", Obs.Trace.I w.Procpool.pid) ];
              kill_quiet w.Procpool.pid Sys.sigterm
            end;
            if (not job.w_killed) && dt > t.cfg.abandon_grace_s then begin
              job.w_killed <- true;
              t.kills_kill <- t.kills_kill + 1;
              metric_inc t "serve.workers.sigkill";
              trace_event t "serve-worker-kill"
                [ ("id", Obs.Trace.I job.wsub.Store.id);
                  ("pid", Obs.Trace.I w.Procpool.pid) ];
              kill_quiet w.Procpool.pid Sys.sigkill
            end
          end
        | W_starting { w; since } ->
          (* a worker that never says Hello is as hung as one that never
             finishes a case; the reap restarts it under backoff *)
          if now -. since > 10.0 then kill_quiet w.Procpool.pid Sys.sigkill
        | W_down { next_spawn_at } ->
          let wanted =
            (not t.shutting_down)
            && not
                 (t.draining
                 && Fairq.depth t.queue = 0
                 && active_jobs t = 0)
          in
          if wanted && now >= next_spawn_at then spawn_worker t wslot
        | W_ready _ -> ())
      ws

(* Exit-path cleanup: close every control channel (EOF alone makes an idle
   worker exit), SIGTERM, give stragglers a short grace, SIGKILL the rest,
   and reap them all — the no-leaked-children half of the drain contract. *)
let shutdown_pool t =
  match t.pool with
  | In_process -> ()
  | Workers ws ->
    let live =
      Array.to_list ws
      |> List.filter_map (fun s ->
             match worker_of s with
             | Some w ->
               close_worker_fd w;
               kill_quiet w.Procpool.pid Sys.sigterm;
               Some w.Procpool.pid
             | None -> None)
    in
    Array.iter (fun s -> s.ws <- W_down { next_spawn_at = infinity }) ws;
    let deadline = Unix.gettimeofday () +. 2.0 in
    let rec reap_all pending =
      if pending <> [] then begin
        let still =
          List.filter
            (fun pid ->
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> true
              | _ -> false
              | exception Unix.Unix_error _ -> false)
            pending
        in
        if still <> [] then
          if Unix.gettimeofday () > deadline then
            List.iter
              (fun pid ->
                kill_quiet pid Sys.sigkill;
                try ignore (Rb_util.Retry.on_eintr (fun () -> Unix.waitpid [] pid))
                with Unix.Unix_error _ -> ())
              still
          else begin
            Unix.sleepf 0.02;
            reap_all still
          end
      end
    in
    reap_all live

let finalize_slot t slot =
  (* a slot domain that died hard (its own catch-all never ran: stack
     overflow, OOM) surfaces here as a join exception — a crashed runner,
     not a server crash: the slot is restarted by requeue and the crash
     counts toward the job's quarantine budget *)
  let outcome =
    match Domain.join slot.domain with
    | r -> `Joined r
    | exception e -> `Crashed (Printexc.to_string e)
  in
  let watchdog_kill =
    slot_aborted slot
    &&
    match outcome with
    | `Joined (Ok o) -> o.job_failed <> None
    | `Joined (Error _) | `Crashed _ -> true
  in
  match outcome with
  | `Crashed msg ->
    metric_inc t "serve.runner_crashes";
    trace_event t "serve-runner-crash"
      [ ("id", Obs.Trace.I slot.sub.Store.id); ("exn", Obs.Trace.S msg) ];
    requeue_or_quarantine t slot.sub
      ~reason:(Printf.sprintf "runner domain died: %s" msg)
      ~backtrace:msg
  | `Joined _ when watchdog_kill ->
    (* the cooperative abort landed at a case boundary: the journal holds
       every completed case, the attempt itself was a watchdog kill *)
    requeue_or_quarantine t slot.sub ~reason:"aborted by watchdog"
      ~backtrace:""
  | `Joined outcome ->
  let service_ms = (Unix.gettimeofday () -. slot.started_at) *. 1000.0 in
  t.service_ewma_ms <- (0.7 *. t.service_ewma_ms) +. (0.3 *. service_ms);
  metric_observe t "serve.service_ms" service_ms;
  metric_observe t
    (Printf.sprintf "serve.service_ms.%s" slot.sub.Store.tenant)
    service_ms;
  let id = slot.sub.Store.id in
  let completion =
    match outcome with
    | Ok o ->
      let passed =
        List.length
          (List.filter (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.passed) o.reports)
      in
      if o.replayed > 0 then metric_inc t "serve.jobs.resumed";
      { Store.cases = List.length o.reports; passed; failed = o.job_failed }
    | Error msg -> { Store.cases = 0; passed = 0; failed = Some msg }
  in
  (match outcome with
  | Error msg ->
    (* even a crashed job leaves durable (empty) results so RESULTS is
       well-defined *)
    Store.write_results t.store id [];
    ignore msg
  | Ok _ -> ());
  Store.complete t.store id completion;
  (match completion.Store.failed with
  | None ->
    t.completed <- t.completed + 1;
    metric_inc t "serve.completed"
  | Some _ ->
    t.failed <- t.failed + 1;
    metric_inc t "serve.failed");
  trace_event t "serve-job-done"
    [ ("id", Obs.Trace.I id);
      ("cases", Obs.Trace.I completion.Store.cases);
      ("passed", Obs.Trace.I completion.Store.passed);
      ("failed", Obs.Trace.B (completion.Store.failed <> None)) ];
  (match subscriber_conn t id with
  | None -> ()
  | Some conn ->
    send t conn
      (Wire.Done
         { id; cases = completion.Store.cases;
           passed = completion.Store.passed;
           failed = completion.Store.failed }));
  Hashtbl.remove t.subscribers id

let poll_slots t =
  let now = Unix.gettimeofday () in
  (* watchdog: a slot with no case progress for [stall_timeout_s], or past
     the [job_timeout_s] wall ceiling, gets the cooperative abort — the
     runner raises at its next case boundary and the journal keeps every
     completed case *)
  List.iter
    (fun s ->
      if (not (slot_aborted s)) && not (slot_finished s) then begin
        let stalled = now -. s.last_progress > t.cfg.stall_timeout_s in
        let over = now -. s.started_at > t.cfg.job_timeout_s in
        if stalled || over then begin
          s.abort_at <- now;
          Atomic.set s.cancel true;
          metric_inc t "serve.watchdog.fired";
          trace_event t "serve-watchdog"
            [ ("id", Obs.Trace.I s.sub.Store.id);
              ("why", Obs.Trace.S (if stalled then "stalled" else "over-budget")) ]
        end
      end)
    t.slots;
  let done_, live = List.partition slot_finished t.slots in
  (* a slot still not finished [abandon_grace_s] after its abort is hung
     inside a case — OCaml domains cannot be killed, so the domain is
     parked as a zombie (reaped if it ever dies) and the slot is reclaimed
     now; the job itself requeues at its journal frontier *)
  let abandoned, live =
    List.partition
      (fun s -> slot_aborted s && now -. s.abort_at > t.cfg.abandon_grace_s)
      live
  in
  t.slots <- live;
  List.iter (drain_stream t) live;
  List.iter
    (fun s ->
      drain_stream t s;
      t.zombies <- s :: t.zombies;
      metric_inc t "serve.slots.abandoned";
      trace_event t "serve-abandon" [ ("id", Obs.Trace.I s.sub.Store.id) ];
      requeue_or_quarantine t s.sub
        ~reason:"hung runner abandoned by watchdog" ~backtrace:"")
    abandoned;
  (* drain once more after the finished flag so every case frame precedes
     the job's Done frame *)
  List.iter (fun s -> drain_stream t s; finalize_slot t s) done_;
  (* reap zombies whose domains eventually died; never block on live ones *)
  let dead, still = List.partition slot_finished t.zombies in
  List.iter
    (fun z -> match Domain.join z.domain with _ -> () | exception _ -> ())
    dead;
  t.zombies <- still

(* -- socket plumbing ----------------------------------------------------- *)

let try_flush conn =
  if (not conn.closed) && not (Outbuf.is_empty conn.out) then begin
    let progressed = ref false in
    let continue = ref true in
    while !continue do
      match Outbuf.peek conn.out with
      | None -> continue := false
      | Some (chunk, off) -> (
        let len = String.length chunk - off in
        match
          Rb_util.Retry.on_eintr (fun () ->
              Unix.write_substring conn.fd chunk off len)
        with
        | 0 -> continue := false
        | n ->
          progressed := true;
          Outbuf.consume conn.out n;
          if n < len then continue := false
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
        | exception Unix.Unix_error _ ->
          conn.closed <- true;
          continue := false)
    done;
    if !progressed then conn.last_flush <- Unix.gettimeofday ()
  end

let close_conn t conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end
  else (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Hashtbl.remove t.conns conn.cid

let read_conn t conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    match
      Rb_util.Retry.on_eintr (fun () ->
          Unix.read conn.fd buf 0 (Bytes.length buf))
    with
    | 0 -> close_conn t conn
    | n -> (
      metric_inc t "serve.frames.fed";
      match Wire.feed conn.dec buf 0 n with
      | Ok frames ->
        List.iter
          (fun payload ->
            match Wire.parse_request payload with
            | Ok req -> handle_request t conn req
            | Error e ->
              metric_inc t "serve.protocol_errors";
              send t conn (Wire.Error_msg e))
          frames;
        go ()
      | Error e ->
        (* framing violation: this connection is unrecoverable, the loop
           is not — answer, flush, drop *)
        metric_inc t "serve.protocol_errors";
        trace_event t "serve-protocol-error" [ ("err", Obs.Trace.S e) ];
        send t conn (Wire.Error_msg e);
        conn.close_after_flush <- true)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> close_conn t conn
  in
  go ()

(* -- main loop ----------------------------------------------------------- *)

let run ?(on_ready = fun (_ : string) -> ()) cfg =
  (* a dead client mid-write must be an EPIPE error, not a process kill *)
  let previous_sigpipe =
    match Sys.signal Sys.sigpipe Sys.Signal_ignore with
    | s -> Some s
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  (* open_dir runs the fsck scrub first: a state dir that survived kill -9
     or rot comes up with damage classified and contained, never fatal *)
  let store = Store.open_dir ~dir:cfg.state_dir () in
  let queue =
    Fairq.create ~max_queue:cfg.max_queue ~quota:cfg.quota ~weights:cfg.weights ()
  in
  (* SIGCHLD self-pipe: the handler writes one byte, folding child-death
     wakeups into the same select the sockets use *)
  let sigchld_r, sigchld_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock sigchld_r;
  Unix.set_nonblock sigchld_w;
  let t =
    { cfg; store; queue; conns = Hashtbl.create 16;
      subscribers = Hashtbl.create 16;
      pool =
        (match cfg.worker_argv with
        | None -> In_process
        | Some _ ->
          Workers
            (Array.init (max 1 cfg.runners) (fun _ ->
                 { ws = W_down { next_spawn_at = 0.0 }; failures = 0 })));
      rng = Rb_util.Rng.create cfg.rng_seed;
      sigchld_w; slots = []; zombies = [];
      shutting_down = false; draining = false;
      next_cid = 0; service_ewma_ms = 1000.0; ever_ready = false;
      spawn_fail_streak = 0; accepted = 0; completed = 0;
      failed = 0; cancelled = 0; busy = 0; rejected = 0; resumed = 0;
      quarantined_n = 0; requeued = 0; evicted = 0; respawns = 0;
      kills_term = 0; kills_kill = 0 }
  in
  let chld_byte = Bytes.make 1 '\001' in
  let previous_sigchld =
    match t.pool with
    | In_process -> None
    | Workers _ -> (
      match
        Sys.signal Sys.sigchld
          (Sys.Signal_handle
             (fun _ ->
               try ignore (Unix.write t.sigchld_w chld_byte 0 1)
               with Unix.Unix_error _ -> ()))
      with
      | s -> Some s
      | exception (Invalid_argument _ | Sys_error _) -> None)
  in
  (match cfg.trace with
  | None -> ()
  | Some sink -> Obs.Trace.set_time_source sink Unix.gettimeofday);
  (* durable resume: everything accepted and unfinished before the last
     kill re-enters the queue, before the socket even opens. A job whose
     crash WAL already shows the budget spent — it kept killing the whole
     server — is quarantined here instead of being requeued to kill it
     again. *)
  List.iter
    (fun (sub : Store.submission) ->
      if Store.crash_count t.store sub.Store.id >= cfg.max_crashes then
        quarantine_job t sub
          ~reason:
            (Printf.sprintf "crashed the server or its runner %d times"
               (Store.crash_count t.store sub.Store.id))
          ~backtrace:""
      else begin
        t.resumed <- t.resumed + 1;
        metric_inc t "serve.jobs.requeued";
        ignore
          (Fairq.admit ~force:true t.queue ~tenant:sub.Store.tenant
             ~cost:(job_cost sub) sub)
      end)
    (Store.pending t.store);
  trace_event t "serve-start"
    [ ("resumed", Obs.Trace.I t.resumed);
      ("runners", Obs.Trace.I cfg.runners);
      ("pool", Obs.Trace.S (pool_label t)) ];
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Rb_util.Fsfile.remove_if_exists cfg.socket;
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  on_ready cfg.socket;
  let accept_new () =
    let rec go () =
      match
        Rb_util.Retry.on_eintr (fun () -> Unix.accept ~cloexec:true listen_fd)
      with
      | fd, _ ->
        Unix.set_nonblock fd;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        Hashtbl.replace t.conns cid
          { fd; cid; dec = Wire.decoder ();
            out = Outbuf.create ~limit:cfg.out_limit;
            last_flush = Unix.gettimeofday (); close_after_flush = false;
            closed = false };
        metric_inc t "serve.connections";
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  let drain_sigchld () =
    let buf = Bytes.create 64 in
    let rec go () =
      match Unix.read sigchld_r buf 0 (Bytes.length buf) with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  let conn_list () = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  let all_flushed () =
    List.for_all (fun c -> Outbuf.is_empty c.out) (conn_list ())
  in
  let finished () =
    (t.shutting_down && active_jobs t = 0 && all_flushed ())
    || (t.draining
       && active_jobs t = 0
       && Fairq.depth t.queue = 0
       && all_flushed ())
  in
  while not (finished ()) do
    let conns = conn_list () in
    (* (fd, slot) pairs rebuilt each tick from live worker state *)
    let wfds =
      match t.pool with
      | In_process -> []
      | Workers ws ->
        Array.to_list ws
        |> List.filter_map (fun s ->
               match worker_of s with
               | Some w when w.Procpool.alive -> Some (w.Procpool.fd, s)
               | _ -> None)
    in
    let rds =
      (listen_fd :: sigchld_r :: List.map fst wfds)
      @ List.map (fun c -> c.fd) conns
    in
    let wrs =
      List.filter_map
        (fun c -> if not (Outbuf.is_empty c.out) then Some c.fd else None)
        conns
    in
    let rd, wr, _ =
      Rb_util.Retry.on_eintr (fun () -> Unix.select rds wrs [] cfg.tick_s)
    in
    if List.mem listen_fd rd then accept_new ();
    List.iter
      (fun c -> if (not c.closed) && List.mem c.fd rd then read_conn t c)
      conns;
    List.iter
      (fun c -> if (not c.closed) && List.mem c.fd wr then try_flush c)
      conns;
    (* worker frames before the reap so a Job_done beats its own SIGCHLD;
       the reap before the watchdog so deaths become respawns this tick *)
    List.iter
      (fun (fd, wslot) -> if List.mem fd rd then read_worker t wslot)
      wfds;
    if List.mem sigchld_r rd then drain_sigchld ();
    reap_children t;
    (* draining still dispatches — the point is to finish the queue *)
    if not t.shutting_down then dispatch t;
    poll_slots t;
    poll_workers t;
    if t.shutting_down then
      (* still drain finished work, but start nothing new *)
      metric_gauge t "serve.active" (float_of_int (active_jobs t));
    (* eager flush: a response written this tick should not wait for the
       next select round trip *)
    List.iter (fun c -> if not c.closed then try_flush c) (conn_list ());
    (* idle-reader eviction: pending output and a socket that has taken
       nothing for evict_idle_s — a slowloris reader holding buffer memory
       hostage. The durable results file makes dropping it safe. *)
    let now = Unix.gettimeofday () in
    List.iter
      (fun c ->
        if
          (not c.closed)
          && (not (Outbuf.is_empty c.out))
          && now -. c.last_flush > cfg.evict_idle_s
        then begin
          t.evicted <- t.evicted + 1;
          metric_inc t "serve.evicted";
          trace_event t "serve-evict" [ ("cid", Obs.Trace.I c.cid) ];
          c.closed <- true
        end)
      (conn_list ());
    List.iter
      (fun c ->
        if c.closed || (c.close_after_flush && Outbuf.is_empty c.out) then
          close_conn t c)
      (conn_list ())
  done;
  shutdown_pool t;
  List.iter (fun c -> close_conn t c) (conn_list ());
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Rb_util.Fsfile.remove_if_exists cfg.socket;
  (match previous_sigchld with
  | Some s -> (try Sys.set_signal Sys.sigchld s with Invalid_argument _ | Sys_error _ -> ())
  | None -> ());
  (try Unix.close sigchld_r with Unix.Unix_error _ -> ());
  (try Unix.close t.sigchld_w with Unix.Unix_error _ -> ());
  (match previous_sigpipe with
  | Some s -> (try Sys.set_signal Sys.sigpipe s with Invalid_argument _ | Sys_error _ -> ())
  | None -> ());
  let queued, _, _, _ = Store.counts t.store in
  { accepted = t.accepted;
    completed = t.completed;
    failed = t.failed;
    cancelled = t.cancelled;
    busy = t.busy;
    rejected = t.rejected;
    resumed = t.resumed;
    left_queued = queued;
    quarantined = t.quarantined_n;
    requeued = t.requeued;
    evicted = t.evicted }

(* Process-isolated runner pool. Each runner slot fork/execs a hidden
   worker subcommand of the server's own binary and speaks the wire
   framing over a socketpair dup2'd onto the worker's stdin. Unlike the
   in-process domain path, a wedged worker can always be reclaimed: the
   escalation ladder ends in SIGKILL, which no userspace state can block.

   One worker process runs one job attempt, then exits: rlimit budgets
   (RLIMIT_AS from --worker-mem-mb, RLIMIT_CPU from --job-timeout) are
   per-attempt by construction, and no heap or global state bleeds
   between jobs. The supervisor respawns workers with exponential backoff
   and seeded jitter, so a crash-looping environment degrades to bounded
   churn rather than a fork bomb. *)

external set_mem_limit_mb : int -> bool = "rb_procpool_set_mem_limit_mb"
external set_cpu_limit_s : int -> bool = "rb_procpool_set_cpu_limit_s"

(* -- protocol ----------------------------------------------------------- *)

type job_spec = {
  id : int;
  backend : string;
  cases : string list;
  opts : Exec.Campaign_opts.t;          (* wire subset, Campaign_opts codec *)
  journal_dir : string;
  results_path : string;
  domains : int option;
  poison : (string * Jobrun.poison_mode) list;
  (* the persistent-KB fields are deliberately NOT part of the client-facing
     Campaign_opts wire codec (a remote client must not point the server at
     files); the server chooses them per tenant and they ride this
     server-to-worker frame only *)
  kb_dir : string option;
  kb_readonly : bool;
}

type to_worker =
  | Job of job_spec
  | Cancel  (* cooperative rung of the escalation ladder *)

type to_server =
  | Hello of { pid : int }  (* handshake: the worker is ready for a job *)
  | Heartbeat               (* liveness between cases of a slow job *)
  | Case_done of { seq : int; case : string; seed : int; report_json : string }
  | Job_done of {
      cases : int;
      passed : int;
      failed : string option;
      replayed : int;
    }
      (* sent only after the durable results file is written: the server
         may mark the job complete the moment this frame arrives *)

open Rb_util.Json

let num i = Num (float_of_int i)

let to_worker_string = function
  | Cancel -> to_string (Obj [ ("type", Str "cancel") ])
  | Job j ->
    to_string
      (Obj
         (List.concat
            [ [ ("type", Str "job"); ("id", num j.id);
                ("backend", Str j.backend);
                ("cases", List (List.map (fun c -> Str c) j.cases));
                ("opts", Exec.Campaign_opts.to_wire_json j.opts);
                ("journal_dir", Str j.journal_dir);
                ("results_path", Str j.results_path) ];
              (match j.domains with None -> [] | Some d -> [ ("domains", num d) ]);
              (match j.kb_dir with
              | None -> []
              | Some d ->
                ("kb_dir", Str d)
                :: (if j.kb_readonly then [ ("kb_readonly", Bool true) ] else []));
              (match j.poison with
              | [] -> []
              | ps ->
                [ ( "poison",
                    Obj
                      (List.map
                         (fun (c, m) -> (c, Str (Jobrun.poison_label m)))
                         ps) ) ]) ]))

let to_worker_of_string s =
  let ( let* ) r f = Result.bind r f in
  let* json =
    match parse s with Ok j -> Ok j | Error e -> Error ("worker frame: " ^ e)
  in
  match Option.bind (member "type" json) to_str with
  | Some "cancel" -> Ok Cancel
  | Some "job" ->
    let int_field name =
      match Option.bind (member name json) to_int with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "job frame: missing %S" name)
    in
    let str_field name =
      match Option.bind (member name json) to_str with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "job frame: missing %S" name)
    in
    let* id = int_field "id" in
    let* backend = str_field "backend" in
    let* journal_dir = str_field "journal_dir" in
    let* results_path = str_field "results_path" in
    let* cases =
      match Option.map (List.map to_str) (Option.bind (member "cases" json) to_list) with
      | Some ss when not (List.mem None ss) -> Ok (List.filter_map Fun.id ss)
      | _ -> Error "job frame: bad \"cases\""
    in
    let* opts =
      match member "opts" json with
      | None -> Error "job frame: missing \"opts\""
      | Some o -> Exec.Campaign_opts.of_wire_json o
    in
    let domains = Option.bind (member "domains" json) to_int in
    let poison =
      match member "poison" json with
      | Some (Obj fields) ->
        List.filter_map
          (fun (c, v) ->
            Option.bind (to_str v) (fun l ->
                Option.map (fun m -> (c, m)) (Jobrun.poison_of_label l)))
          fields
      | _ -> []
    in
    let kb_dir = Option.bind (member "kb_dir" json) to_str in
    let kb_readonly =
      Option.value ~default:false (Option.bind (member "kb_readonly" json) to_bool)
    in
    Ok
      (Job
         { id; backend; cases; opts; journal_dir; results_path; domains; poison;
           kb_dir; kb_readonly })
  | Some t -> Error (Printf.sprintf "unknown worker frame type %S" t)
  | None -> Error "worker frame: missing \"type\""

(* [Case_done] splices the rendered report verbatim, mirroring [Wire.Case]:
   the bytes the server relays to subscribers are exactly the bytes
   [Report.to_json] produced in the worker. *)
let to_server_string = function
  | Hello { pid } -> to_string (Obj [ ("type", Str "hello"); ("pid", num pid) ])
  | Heartbeat -> to_string (Obj [ ("type", Str "heartbeat") ])
  | Case_done { seq; case; seed; report_json } ->
    Printf.sprintf
      {|{"type":"case","seq":%d,"case":%s,"seed":%d,"report":%s}|} seq
      (escape case) seed report_json
  | Job_done { cases; passed; failed; replayed } ->
    to_string
      (Obj
         ([ ("type", Str "done"); ("cases", num cases); ("passed", num passed);
            ("replayed", num replayed) ]
         @ match failed with None -> [] | Some m -> [ ("failed", Str m) ]))

let to_server_of_string s =
  let ( let* ) r f = Result.bind r f in
  let* json =
    match parse s with Ok j -> Ok j | Error e -> Error ("worker frame: " ^ e)
  in
  let int_field name =
    match Option.bind (member name json) to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "worker frame: missing %S" name)
  in
  match Option.bind (member "type" json) to_str with
  | Some "hello" ->
    let* pid = int_field "pid" in
    Ok (Hello { pid })
  | Some "heartbeat" -> Ok Heartbeat
  | Some "case" ->
    let* seq = int_field "seq" in
    let* seed = int_field "seed" in
    let* case =
      match Option.bind (member "case" json) to_str with
      | Some c -> Ok c
      | None -> Error "worker frame: missing \"case\""
    in
    let* report_json =
      match member "report" json with
      | Some r -> Ok (to_string r)
      | None -> Error "worker frame: missing \"report\""
    in
    Ok (Case_done { seq; case; seed; report_json })
  | Some "done" ->
    let* cases = int_field "cases" in
    let* passed = int_field "passed" in
    let replayed =
      Option.value ~default:0 (Option.bind (member "replayed" json) to_int)
    in
    let failed = Option.bind (member "failed" json) to_str in
    Ok (Job_done { cases; passed; failed; replayed })
  | Some t -> Error (Printf.sprintf "unknown worker frame type %S" t)
  | None -> Error "worker frame: missing \"type\""

(* -- supervision helpers ------------------------------------------------ *)

(* Exponential backoff with seeded jitter: base 0.25s doubling to a 30s
   cap, scaled by a uniform ±25% draw so a fleet of crashed workers does
   not respawn in lockstep. Deterministic per server RNG seed. *)
let backoff_delay ~failures rng =
  let exp = min 7 (max 0 (failures - 1)) in
  let base = Float.min 30.0 (0.25 *. Float.pow 2.0 (float_of_int exp)) in
  base *. (0.75 +. (0.5 *. Rb_util.Rng.float rng))

type worker = {
  pid : int;
  fd : Unix.file_descr;  (* supervisor's socketpair end, nonblocking *)
  dec : Wire.decoder;
  mutable alive : bool;  (* flips false on EOF/IO error; reaped via SIGCHLD *)
}

let spawn ~argv ?(mem_mb = 0) ?(cpu_s = 0) () =
  if Array.length argv = 0 then Error "procpool: empty worker argv"
  else
    match
      Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
    with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "socketpair: %s" (Unix.error_message e))
    | sup_end, child_end -> (
      match Unix.fork () with
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close sup_end with Unix.Unix_error _ -> ());
        (try Unix.close child_end with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "fork: %s" (Unix.error_message e))
      | 0 ->
        (* child: the socketpair becomes stdin — a bidirectional control
           channel dup2 clears close-on-exec for. Rlimits go on before
           exec so even a worker that fails to start is capped. *)
        (try
           (try Unix.close sup_end with Unix.Unix_error _ -> ());
           if child_end <> Unix.stdin then begin
             Unix.dup2 child_end Unix.stdin;
             Unix.close child_end
           end;
           if mem_mb > 0 then ignore (set_mem_limit_mb mem_mb);
           if cpu_s > 0 then ignore (set_cpu_limit_s cpu_s);
           Unix.execv argv.(0) argv
         with _ -> ());
        Unix._exit 127
      | pid ->
        (try Unix.close child_end with Unix.Unix_error _ -> ());
        Unix.set_nonblock sup_end;
        Ok { pid; fd = sup_end; dec = Wire.decoder (); alive = true })

(* Best-effort framed write to a worker. Control frames are tiny and a
   healthy worker keeps its socket drained, so a short select-bounded
   retry suffices; a worker that cannot take a Cancel frame is exactly
   the worker the SIGTERM/SIGKILL rungs exist for. *)
let send w msg =
  let s = Wire.encode (to_worker_string msg) in
  let n = String.length s in
  let deadline = Unix.gettimeofday () +. 0.5 in
  let rec go off =
    if off >= n then true
    else if Unix.gettimeofday () > deadline then false
    else
      match Unix.write_substring w.fd s off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        match Unix.select [] [ w.fd ] [] 0.05 with
        | _ -> go off
        | exception Unix.Unix_error _ -> go off)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ ->
        w.alive <- false;
        false
  in
  go 0

(* -- worker side -------------------------------------------------------- *)

(* The worker process: Hello, one Job, stream cases, durable results,
   Done, exit. EOF on the control channel means the supervisor is gone —
   exit immediately so a dead server never strands orphan workers. *)
let worker_main () =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ());
  let fd = Unix.stdin in
  let dec = Wire.decoder () in
  let inbox = Queue.create () in
  let buf = Bytes.create 65536 in
  let send_frame msg =
    let s = Wire.encode (to_server_string msg) in
    let n = String.length s in
    let rec go off =
      if off < n then
        match
          Rb_util.Retry.on_eintr (fun () ->
              Unix.write_substring fd s off (n - off))
        with
        | k -> go (off + k)
        | exception Unix.Unix_error _ -> Unix._exit 0
    in
    go 0
  in
  (* pull whatever the supervisor sent; [block] waits for at least one
     readable byte, the poll flavor runs at case boundaries *)
  let pump ~block =
    let readable =
      block
      ||
      match Unix.select [ fd ] [] [] 0.0 with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error _ -> false
    in
    if readable then
      match
        Rb_util.Retry.on_eintr (fun () -> Unix.read fd buf 0 (Bytes.length buf))
      with
      | 0 -> Unix._exit 0 (* supervisor gone: no orphans *)
      | n -> (
        match Wire.feed dec buf 0 n with
        | Error _ -> Unix._exit 0
        | Ok frames ->
          List.iter
            (fun p ->
              match to_worker_of_string p with
              | Ok m -> Queue.add m inbox
              | Error _ -> ())
            frames)
      | exception Unix.Unix_error _ -> Unix._exit 0
  in
  let rec next_msg () =
    match Queue.take_opt inbox with
    | Some m -> m
    | None ->
      pump ~block:true;
      next_msg ()
  in
  send_frame (Hello { pid = Unix.getpid () });
  let rec await_job () =
    match next_msg () with Cancel -> await_job () | Job spec -> spec
  in
  let spec = await_job () in
  let cancelled = ref false in
  let last_heartbeat = ref 0.0 in
  let boundary (case : Dataset.Case.t) =
    pump ~block:false;
    Queue.iter (function Cancel -> cancelled := true | Job _ -> ()) inbox;
    Queue.clear inbox;
    let now = Unix.gettimeofday () in
    if now -. !last_heartbeat > 0.25 then begin
      last_heartbeat := now;
      send_frame Heartbeat
    end;
    (match List.assoc_opt case.Dataset.Case.name spec.poison with
    | Some m -> Jobrun.apply_poison m
    | None -> ());
    if !cancelled then raise (Exec.Runner.Aborted "watchdog abort")
  in
  let observe ~seq ~case ~seed ~report_json =
    send_frame (Case_done { seq; case; seed; report_json })
  in
  let result =
    try
      Jobrun.execute ~backend:spec.backend ~case_names:spec.cases
        ~opts:
          { spec.opts with
            Exec.Campaign_opts.kb_dir = spec.kb_dir;
            kb_readonly = spec.kb_readonly }
        ~label:(Printf.sprintf "serve/job-%06d" spec.id)
        ~journal_dir:spec.journal_dir ~domains:spec.domains ~before:boundary
        ~cancel:(fun () -> !cancelled)
        ~observe ()
    with Out_of_memory -> Error "out of memory"
  in
  (* durable results before Done — the supervisor marks the job complete
     on the frame, exactly like the in-process path writes before its
     finished flag. Same emit path as [Store.write_results], so the bytes
     match the in-process mode line for line. *)
  (match result with
  | Ok o ->
    Rb_util.Fsfile.write_channel spec.results_path (fun oc ->
        Rustbrain.Report.emit_jsonl oc (List.to_seq o.Jobrun.reports));
    let passed =
      List.length
        (List.filter
           (fun (r : Rustbrain.Report.t) -> r.Rustbrain.Report.passed)
           o.Jobrun.reports)
    in
    send_frame
      (Job_done
         { cases = List.length o.Jobrun.reports; passed;
           failed = o.Jobrun.job_failed; replayed = o.Jobrun.replayed })
  | Error msg ->
    (* even a crashed job leaves durable (empty) results so RESULTS is
       well-defined *)
    Rb_util.Fsfile.write_channel spec.results_path (fun _ -> ());
    send_frame
      (Job_done { cases = 0; passed = 0; failed = Some msg; replayed = 0 }));
  Unix._exit 0

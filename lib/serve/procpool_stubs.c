/* setrlimit bindings for the worker pool: OCaml's Unix library exposes no
   resource limits, and the whole point of process-isolated runners is that
   the OS enforces the caps the watchdog can only approximate. Applied in
   the worker child between fork and exec (rlimits survive execve). */

#include <caml/mlvalues.h>
#include <caml/memory.h>

#include <sys/resource.h>
#include <sys/time.h>

/* Cap the worker's address space (RLIMIT_AS) at [mb] MiB: a runaway
   allocation fails with Out_of_memory (or the process dies) instead of
   taking the host down. Returns whether setrlimit succeeded. */
CAMLprim value rb_procpool_set_mem_limit_mb(value mb)
{
  CAMLparam1(mb);
  struct rlimit rl;
  rl.rlim_cur = (rlim_t)Long_val(mb) * 1024 * 1024;
  rl.rlim_max = rl.rlim_cur;
  CAMLreturn(Val_bool(setrlimit(RLIMIT_AS, &rl) == 0));
}

/* Cap the worker's CPU seconds (RLIMIT_CPU): a busy-spinning runner the
   cooperative cancel cannot reach is killed by the kernel (SIGXCPU/SIGKILL)
   even if the supervisor itself is wedged. Per job attempt — workers are
   recycled after each job, so the budget never accumulates across jobs. */
CAMLprim value rb_procpool_set_cpu_limit_s(value secs)
{
  CAMLparam1(secs);
  struct rlimit rl;
  rl.rlim_cur = (rlim_t)Long_val(secs);
  rl.rlim_max = rl.rlim_cur + 5; /* hard limit slack: SIGXCPU first, then SIGKILL */
  CAMLreturn(Val_bool(setrlimit(RLIMIT_CPU, &rl) == 0));
}

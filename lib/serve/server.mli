(** Event-driven repair campaign server.

    One single-threaded [Unix.select] event loop owns the listening
    Unix-domain socket, every client connection, the {!Fairq} admission
    queue and the durable {!Store}; repair jobs themselves run on
    runner-slot domains (at most [runners] concurrent jobs, each internally
    domain-parallel via [Exec.Checkpoint.run]). The loop never blocks on a
    job: slots signal completion through an atomic flag the loop polls each
    tick, and stream per-case reports through a mutex-guarded queue the
    loop drains into CASE frames.

    Durability contract: a job is ACCEPTED only after its submission record
    is fsynced into the store, each job runs under its own write-ahead
    journal, and a server restarted on the same state directory re-enqueues
    every accepted-but-unfinished job before opening its socket — repairs
    already journaled are replayed, not recomputed, and the stitched
    results file is byte-identical to an uninterrupted run's.

    Admission control: a full queue or an over-quota tenant gets an
    explicit BUSY frame carrying a retry-after hint derived from an EWMA of
    per-job service time scaled by the backlog — callers are told to back
    off instead of being buffered unboundedly or silently dropped. *)

type config = {
  socket : string;           (** Unix-domain socket path to bind *)
  state_dir : string;        (** {!Store} root; survives restarts *)
  runners : int;             (** concurrent job slots (domains) *)
  domains_per_job : int option;
      (** scheduler width for jobs whose opts leave [domains] unset *)
  max_queue : int;           (** bounded inbound queue (jobs) *)
  quota : int;               (** max queued jobs per tenant *)
  weights : (string * int) list;  (** fair-queue tenant weights *)
  default_opts : Exec.Campaign_opts.t;
      (** applied when SUBMIT carries no opts *)
  tick_s : float;            (** select timeout; slot-poll cadence *)
  trace : Obs.Trace.t option;
  metrics : Obs.Metrics.registry option;
}

val default_config : config
(** socket ["rustbrain.sock"], state dir ["serve-state"], 2 runners,
    queue bound 128, quota 64, 20ms tick, no trace/metrics. *)

type summary = {
  accepted : int;
  completed : int;
  failed : int;
  cancelled : int;
  busy : int;        (** submissions turned away with BUSY *)
  rejected : int;    (** submissions refused as invalid *)
  resumed : int;     (** jobs re-enqueued from the store at startup *)
  left_queued : int; (** still-durable jobs left for the next start *)
}

val run : ?on_ready:(string -> unit) -> config -> summary
(** Run the server until a SHUTDOWN frame arrives and in-flight jobs have
    drained (queued-but-unstarted jobs stay durable for the next start).
    [on_ready] is called with the socket path once it is bound and
    listening — the hook tests and the smoke gate use to know when to
    connect. Installs a [SIGPIPE] ignore handler for the duration. *)

(** Event-driven repair campaign server.

    One single-threaded [Unix.select] event loop owns the listening
    Unix-domain socket, every client connection, the {!Fairq} admission
    queue and the durable {!Store}; repair jobs run on a supervised pool
    of worker OS processes ({!Procpool} — at most [runners] concurrent
    jobs, each internally domain-parallel via [Exec.Checkpoint.run]).
    The loop never blocks on a job: workers stream CASE frames and
    heartbeats over their control socketpairs, folded into the same
    [select] as the client sockets, and a SIGCHLD self-pipe wakes the
    loop the instant a worker dies.

    Durability contract: a job is ACCEPTED only after its submission record
    is fsynced into the store, each job runs under its own write-ahead
    journal, and a server restarted on the same state directory re-enqueues
    every accepted-but-unfinished job before opening its socket — repairs
    already journaled are replayed, not recomputed, and the stitched
    results file is byte-identical to an uninterrupted run's. Startup runs
    the {!Store.fsck} scrub, so a damaged state dir degrades to classified,
    contained damage — never a failure to boot.

    Supervision: a per-slot watchdog targets jobs that stall past
    [stall_timeout_s] without completing a case or run past the
    [job_timeout_s] wall ceiling, escalating cooperative Cancel frame →
    SIGTERM (at half the grace) → SIGKILL (at the full grace). SIGKILL is
    unconditional: a SIGSTOP'd, hard-looping or OOM-thrashing worker is
    reclaimed within [stall_timeout_s + abandon_grace_s], always. Each
    worker runs exactly one job attempt under optional OS resource caps
    (RLIMIT_AS from [worker_mem_mb], RLIMIT_CPU from [job_timeout_s]),
    then exits; dead workers respawn under seeded-jitter exponential
    backoff. A crashed or killed attempt requeues the job at its journal
    frontier; a job that spends its [max_crashes] budget — counted
    durably, across whole-server kills — is quarantined as poison with
    its journal preserved for triage.

    [--in-process] mode ([worker_argv = None]) keeps the previous
    runner-domain path: cooperative aborts only, with hung domains
    abandoned as zombies (OCaml domains cannot be killed). The server
    also falls back to it automatically if worker spawning fails before
    any worker ever completes the handshake.

    Admission control: a full queue or an over-quota tenant gets an
    explicit BUSY frame carrying a retry-after hint derived from an EWMA of
    per-job service time scaled by the backlog — callers are told to back
    off instead of being buffered unboundedly or silently dropped. Every
    reply goes through a bounded per-connection outbound buffer; a client
    that stops reading (slowloris) or overflows the bound is evicted — the
    durable results file makes that safe. *)

(** Deterministic fault injection for the chaos harness: fires at every
    case boundary inside the runner (worker process or domain). *)
type poison_mode = Jobrun.poison_mode =
  | Poison_exit   (** [Unix._exit 66]: the runner process dies mid-job *)
  | Poison_hang   (** sleep forever: only the watchdog reclaims the slot *)
  | Poison_raise  (** ordinary exception: isolated as a job failure *)
  | Poison_stop   (** SIGSTOP itself: unsignallable except by SIGKILL *)
  | Poison_kill   (** SIGKILL itself: instant death, nothing flushed *)
  | Poison_oom    (** allocate until RLIMIT_AS (or a bound) kills it *)

type config = {
  socket : string;           (** Unix-domain socket path to bind *)
  state_dir : string;        (** {!Store} root; survives restarts *)
  runners : int;             (** concurrent job slots (workers/domains) *)
  domains_per_job : int option;
      (** scheduler width for jobs whose opts leave [domains] unset *)
  max_queue : int;           (** bounded inbound queue (jobs) *)
  quota : int;               (** max queued jobs per tenant *)
  weights : (string * int) list;  (** fair-queue tenant weights *)
  default_opts : Exec.Campaign_opts.t;
      (** applied when SUBMIT carries no opts *)
  tick_s : float;            (** select timeout; watchdog-poll cadence *)
  max_crashes : int;
      (** crash budget before a job is quarantined as poison *)
  stall_timeout_s : float;
      (** watchdog: max wall seconds between completed cases *)
  job_timeout_s : float;     (** watchdog: wall ceiling per job attempt;
                                 also sizes the worker RLIMIT_CPU cap *)
  abandon_grace_s : float;
      (** wall seconds from the cooperative abort to SIGKILL (SIGTERM
          fires halfway); in-process mode: time before a hung domain is
          abandoned as a zombie and its slot reclaimed *)
  out_limit : int;           (** per-connection outbound buffer bound, bytes *)
  evict_idle_s : float;
      (** evict a connection with pending output whose socket has taken
          nothing for this long *)
  poison : (string * poison_mode) list;
      (** chaos plan, case name -> fault fired at its case boundary;
          declarative so it serializes into worker Job frames *)
  worker_argv : string array option;
      (** worker-process command line (typically the server's own binary
          with a hidden subcommand); [None] = in-process runner domains *)
  worker_mem_mb : int;       (** RLIMIT_AS cap per worker, MiB; 0 = none *)
  rng_seed : int;            (** seeds respawn-backoff jitter *)
  kb_dir : string option;
      (** root of the shared persistent knowledge store; each tenant gets
          the [<kb_dir>/<tenant>] slice, so tenants never retrieve each
          other's learned entries. [None] = jobs keep in-memory KBs. *)
  kb_readonly : bool;
      (** open tenant slices snapshot-only (default [true]): concurrent
          worker processes cannot share the single-writer lock, and a
          missing slice just runs the job KB-less. Set [false] only on a
          single-runner server that should accumulate learned entries. *)
  trace : Obs.Trace.t option;
  metrics : Obs.Metrics.registry option;
}

val default_config : config
(** socket ["rustbrain.sock"], state dir ["serve-state"], 2 runners,
    queue bound 128, quota 64, 20ms tick; crash budget 3, 5min stall /
    1h job watchdog, 1s abandon grace, 8 MiB outbound bound, 30s
    eviction; no poison, in-process runners ([worker_argv = None]), no
    memory cap, seed [0x5eed], no trace/metrics. *)

type summary = {
  accepted : int;
  completed : int;
  failed : int;
  cancelled : int;
  busy : int;        (** submissions turned away with BUSY *)
  rejected : int;    (** submissions refused as invalid *)
  resumed : int;     (** jobs re-enqueued from the store at startup *)
  left_queued : int; (** still-durable jobs left for the next start *)
  quarantined : int; (** jobs moved to quarantine this run *)
  requeued : int;    (** watchdog/crash requeues this run *)
  evicted : int;     (** connections dropped for slow reading or overflow *)
}

val run : ?on_ready:(string -> unit) -> config -> summary
(** Run the server until a SHUTDOWN frame arrives and in-flight jobs have
    drained (queued-but-unstarted jobs stay durable for the next start),
    or until a DRAIN frame's graceful wind-down completes: admission
    closes, the queue and in-flight slots finish, every connection is
    flushed, then the loop exits. On either exit path every worker
    process is terminated (SIGTERM, short grace, SIGKILL) and reaped —
    no children outlive the server. [on_ready] is called with the socket
    path once it is bound and listening — the hook tests and the smoke
    gate use to know when to connect. Installs [SIGPIPE] ignore and
    (worker mode) [SIGCHLD] self-pipe handlers for the duration,
    restoring the previous handlers on exit. *)

(** Event-driven repair campaign server.

    One single-threaded [Unix.select] event loop owns the listening
    Unix-domain socket, every client connection, the {!Fairq} admission
    queue and the durable {!Store}; repair jobs themselves run on
    runner-slot domains (at most [runners] concurrent jobs, each internally
    domain-parallel via [Exec.Checkpoint.run]). The loop never blocks on a
    job: slots signal completion through an atomic flag the loop polls each
    tick, and stream per-case reports through a mutex-guarded queue the
    loop drains into CASE frames.

    Durability contract: a job is ACCEPTED only after its submission record
    is fsynced into the store, each job runs under its own write-ahead
    journal, and a server restarted on the same state directory re-enqueues
    every accepted-but-unfinished job before opening its socket — repairs
    already journaled are replayed, not recomputed, and the stitched
    results file is byte-identical to an uninterrupted run's. Startup runs
    the {!Store.fsck} scrub, so a damaged state dir degrades to classified,
    contained damage — never a failure to boot.

    Supervision: a per-slot watchdog aborts jobs that stall past
    [stall_timeout_s] without completing a case or run past the
    [job_timeout_s] wall ceiling — cooperatively at the next case boundary
    when possible, by abandoning the hung domain (OCaml domains cannot be
    killed) when not. A crashed or abandoned attempt requeues the job at
    its journal frontier; a job that spends its [max_crashes] budget —
    counted durably, across whole-server kills — is quarantined as poison
    with its journal and backtrace preserved for triage.

    Admission control: a full queue or an over-quota tenant gets an
    explicit BUSY frame carrying a retry-after hint derived from an EWMA of
    per-job service time scaled by the backlog — callers are told to back
    off instead of being buffered unboundedly or silently dropped. Every
    reply goes through a bounded per-connection outbound buffer; a client
    that stops reading (slowloris) or overflows the bound is evicted — the
    durable results file makes that safe. *)

(** Deterministic fault injection for the chaos harness: fires at every
    case boundary inside the runner domain. *)
type poison_mode =
  | Poison_exit   (** [Unix._exit]: the whole server dies mid-case *)
  | Poison_hang   (** sleep forever: only the watchdog reclaims the slot *)
  | Poison_raise  (** ordinary exception: isolated as a job failure *)

type config = {
  socket : string;           (** Unix-domain socket path to bind *)
  state_dir : string;        (** {!Store} root; survives restarts *)
  runners : int;             (** concurrent job slots (domains) *)
  domains_per_job : int option;
      (** scheduler width for jobs whose opts leave [domains] unset *)
  max_queue : int;           (** bounded inbound queue (jobs) *)
  quota : int;               (** max queued jobs per tenant *)
  weights : (string * int) list;  (** fair-queue tenant weights *)
  default_opts : Exec.Campaign_opts.t;
      (** applied when SUBMIT carries no opts *)
  tick_s : float;            (** select timeout; slot-poll cadence *)
  max_crashes : int;
      (** crash budget before a job is quarantined as poison *)
  stall_timeout_s : float;
      (** watchdog: max wall seconds between completed cases *)
  job_timeout_s : float;     (** watchdog: wall ceiling per job attempt *)
  abandon_grace_s : float;
      (** wall seconds after the cooperative abort before a hung runner
          domain is abandoned as a zombie and its slot reclaimed *)
  out_limit : int;           (** per-connection outbound buffer bound, bytes *)
  evict_idle_s : float;
      (** evict a connection with pending output whose socket has taken
          nothing for this long *)
  poison : (string -> poison_mode option) option;
      (** chaos hook, called with each case name at its case boundary *)
  trace : Obs.Trace.t option;
  metrics : Obs.Metrics.registry option;
}

val default_config : config
(** socket ["rustbrain.sock"], state dir ["serve-state"], 2 runners,
    queue bound 128, quota 64, 20ms tick; crash budget 3, 5min stall /
    1h job watchdog, 8 MiB outbound bound, 30s eviction; no poison,
    no trace/metrics. *)

type summary = {
  accepted : int;
  completed : int;
  failed : int;
  cancelled : int;
  busy : int;        (** submissions turned away with BUSY *)
  rejected : int;    (** submissions refused as invalid *)
  resumed : int;     (** jobs re-enqueued from the store at startup *)
  left_queued : int; (** still-durable jobs left for the next start *)
  quarantined : int; (** jobs moved to quarantine this run *)
  requeued : int;    (** watchdog/crash requeues this run *)
  evicted : int;     (** connections dropped for slow reading or overflow *)
}

val run : ?on_ready:(string -> unit) -> config -> summary
(** Run the server until a SHUTDOWN frame arrives and in-flight jobs have
    drained (queued-but-unstarted jobs stay durable for the next start),
    or until a DRAIN frame's graceful wind-down completes: admission
    closes, the queue and in-flight slots finish, every connection is
    flushed, then the loop exits. [on_ready] is called with the socket
    path once it is bound and listening — the hook tests and the smoke
    gate use to know when to connect. Installs a [SIGPIPE] ignore handler
    for the duration. *)

(** Blocking client for the repair server's wire protocol.

    A thin synchronous counterpart to the event-driven server: one
    connection, framed sends, timeout-bounded receives. Used by the CLI's
    client-side subcommands, the load driver and the smoke gate; nothing in
    it is server-side. *)

type t

val connect :
  ?retries:int -> ?retry_delay_s:float -> string -> (t, string) result
(** Connect to a Unix-domain socket path, retrying while the socket does
    not exist yet or refuses (server still starting). Defaults: 50 retries,
    100ms apart — five seconds of patience. *)

val close : t -> unit

val send : t -> Wire.request -> (unit, string) result
(** Frame and write one request (blocking until fully written). *)

val recv : ?timeout_s:float -> t -> (Wire.response, string) result
(** Next response frame, in stream order; [timeout_s] (default 30s) bounds
    the whole wait. Frames decoded beyond the first are buffered for
    subsequent calls. *)

val request :
  ?timeout_s:float -> t -> Wire.request -> (Wire.response, string) result
(** {!send} then {!recv}. *)

val run_job :
  ?timeout_s:float ->
  ?on_case:(Wire.response -> unit) ->
  t ->
  tenant:string ->
  backend:string ->
  cases:string list option ->
  opts:Exec.Campaign_opts.t option ->
  ((int * int * string option) * Wire.response list, string) result
(** Submit a job and follow its stream to completion. Returns
    [((cases, passed, failed), case_frames)] on DONE; an immediate BUSY or
    REJECTED surfaces as [Error]. [on_case] fires on each CASE frame as it
    arrives (progress reporting). *)

(** Length-prefixed JSON wire protocol for the repair server.

    Framing: every message is a 4-byte big-endian payload length followed
    by that many bytes of UTF-8 JSON — the shape of the mio protocol
    walkthroughs, chosen because it survives arbitrary read boundaries: a
    {!decoder} fed one byte at a time yields exactly the frames a single
    read would. Declared lengths are bounded ({!default_max_frame}); an
    oversized or non-positive length is a protocol violation that poisons
    the decoder (length-prefixed streams cannot resynchronize after a bad
    header), and the server answers it by dropping that one connection —
    never by dying.

    Grammar (one JSON object per frame):
    {v
    request  := {"type":"submit","tenant":T,"backend":B,"cases":[..]?,"opts":{..}}
              | {"type":"status","id":N?} | {"type":"cancel","id":N}
              | {"type":"results","id":N} | {"type":"shutdown"}
              | {"type":"drain"} | {"type":"health"}
    response := {"type":"accepted","id":N,"queued":Q}
              | {"type":"busy","reason":R,"retry_after_ms":MS}
              | {"type":"rejected","reason":R}
              | {"type":"job","id":N,"state":...}
              | {"type":"server","queued":..,"running":..,...}
              | {"type":"case","id":N,"seq":K,"case":C,"seed":S,"report":{..}}
              | {"type":"done","id":N,"cases":C,"passed":P,"failed":M?}
              | {"type":"quarantined","id":N,"crashes":K,"reason":R,"last_case":C?}
              | {"type":"shutting-down","active":A,"queued":Q}
              | {"type":"draining","active":A,"queued":Q}
              | {"type":"health","queued":..,"running":..,"quarantined":..,
                 "draining":B,"slots":[{"slot":I,"state":S},..]}
              | {"type":"error","msg":M}
    v}
    The ["report"] member of a [case] frame is a verbatim
    [Rustbrain.Report.to_json] object — same versioned codec as journal
    segments and [--out] files. *)

(** {1 Framing} *)

val default_max_frame : int
(** 1 MiB. *)

val encode : string -> string
(** Prefix a payload with its 4-byte big-endian length. *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder

val feed : decoder -> Bytes.t -> int -> int -> (string list, string) result
(** [feed d chunk pos len] consumes [len] bytes and returns every complete
    payload they finish, in stream order; partial frames are buffered for
    the next feed. [Error] is a protocol violation (bad declared length);
    the decoder is poisoned — frames completed before the violation are
    still returned once, the error surfaces from then on. *)

val buffered : decoder -> int
(** Bytes currently buffered awaiting a complete frame. *)

(** {1 Messages} *)

type request =
  | Submit of {
      tenant : string;
      backend : string;
      cases : string list option;  (** [None] = whole corpus *)
      opts : Exec.Campaign_opts.t option;
          (** wire subset; [None] = the server's configured defaults *)
    }
  | Status of int option  (** [None] = whole-server status *)
  | Cancel of int
  | Results of int        (** re-stream a finished job's durable reports *)
  | Shutdown
  | Drain
      (** stop admitting, finish everything queued and in flight, flush
          every connection, then exit — the graceful fleet-rotation verb
          ({!Shutdown} by contrast leaves queued jobs durable for the next
          process) *)
  | Health
      (** liveness probe: queue depth, slot states, quarantine count —
          answerable even while every runner slot is busy *)

type job_state =
  | Queued of { position : int }
  | Running of { done_cases : int; total_cases : int }
  | Finished of { cases : int; passed : int; failed : string option }
  | Cancelled
  | Quarantined of { crashes : int; reason : string; last_case : string option }

type response =
  | Accepted of { id : int; queued : int }
  | Busy of { reason : string; retry_after_ms : int }
  | Rejected of { reason : string }
  | Job of { id : int; state : job_state }
  | Server of {
      queued : int;
      running : int;
      completed : int;
      cancelled : int;
      quarantined : int;  (** 0 when talking to a pre-quarantine server *)
      tenants : (string * int) list;
    }
  | Case of {
      id : int;
      seq : int;
      case : string;
      seed : int;
      report_json : string;
    }
  | Done of { id : int; cases : int; passed : int; failed : string option }
  | Quarantined_result of {
      id : int;
      crashes : int;
      reason : string;
      last_case : string option;
    }
      (** RESULTS terminator for a quarantined job: the job is poison and
          no reports will ever come — triage the journal instead *)
  | Shutting_down of { active : int; queued : int }
  | Draining of { active : int; queued : int }
  | Health of {
      queued : int;
      running : int;
      quarantined : int;
      draining : bool;
      slots : (int * string) list;
          (** slot index -> ["idle" | "starting" | "down" |
              "running job N (pid P)" | "hung job N (pid P)"] *)
      pool : string;           (** ["workers"] or ["in-process"] *)
      worker_pids : int list;  (** live worker processes, slot order *)
      respawns : int;          (** workers respawned after a death *)
      kills_term : int;        (** watchdog SIGTERMs sent *)
      kills_kill : int;        (** watchdog SIGKILLs sent *)
      zombies : int;
          (** abandoned runner domains still parked (in-process mode
              only — the worker pool has no zombies by construction) *)
    }
  | Error_msg of string

val request_to_string : request -> string
val request_to_json : request -> Rb_util.Json.t
val response_to_string : response -> string
val parse_request : string -> (request, string) result
val parse_response : string -> (response, string) result

(** Resilient wrapper around {!Client}: retry with exponential backoff and
    deterministic jitter, per-repair deadline budgets, and a circuit
    breaker that degrades gracefully instead of aborting.

    Every delay (backoff, retry-after) is charged to the client's simulated
    clock, and the jitter comes from the wrapper's own seeded generator, so
    the whole recovery schedule is reproducible: same seed, same faults,
    same retries, same simulated seconds.

    Breaker protocol: [Closed] passes calls through with retries. After
    [breaker_threshold] consecutive failed calls it trips [Open]: calls skip
    the primary entirely and degrade (to the fallback client — a cheaper
    model profile — or a give-up answer) until [breaker_cooldown] simulated
    seconds elapse, when one trial call is allowed ([Half_open]); success
    re-closes it, failure re-opens it. *)

type config = {
  max_retries : int;        (** retries per call before degrading *)
  backoff_base : float;     (** first backoff delay, seconds *)
  backoff_factor : float;   (** exponential growth per retry *)
  backoff_max : float;      (** delay cap before jitter *)
  jitter : float;           (** +- fraction of the delay, seeded *)
  breaker_threshold : int;  (** consecutive failures that trip the breaker *)
  breaker_cooldown : float; (** simulated seconds Open before Half_open *)
  deadline : float option;  (** per-repair budget, simulated seconds *)
}

val default_config : config

type breaker = Closed | Open | Half_open

type stats = {
  mutable requests : int;
  mutable retries : int;
  mutable faults : int;
  mutable breaker_trips : int;
  mutable breaker_recoveries : int;
  mutable fallback_calls : int;
  mutable give_ups : int;
  mutable deadline_hits : int;
}

type t

val create : ?seed:int -> ?config:config -> ?fallback:Client.t -> Client.t -> t
(** [fallback] is consulted when the primary is degraded (breaker open or
    retries exhausted); typically a cheaper profile sharing the same clock. *)

val config : t -> config
val stats : t -> stats
val breaker_state : t -> breaker
val primary : t -> Client.t

val start_repair : t -> unit
(** Begin a per-repair deadline window and clear the per-repair
    [degraded]/[gave_up] flags. *)

val deadline_exceeded : t -> bool
(** The current repair has used up its simulated-seconds budget. *)

val note_deadline_skip : t -> unit
(** Record that the caller's watchdog skipped work because the deadline
    passed (counted once per repair). *)

val degraded : t -> bool
(** The current repair used the fallback, gave up a call, or hit its
    deadline. *)

val gave_up : t -> bool
(** The current repair had at least one call answered with the degrade
    value (no primary, no fallback). *)

val choose_repair : t -> Client.sampling -> Client.task -> Client.choice option
(** Guarded {!Client.choose_repair_result}: retries faulted calls with
    clock-charged backoff; degrades to the fallback or [None] when the
    breaker is open, retries are exhausted, or the deadline has passed. *)

val complete : t -> Client.sampling -> Prompt.t -> string

val charge_prompt : t -> Prompt.t -> unit
(** Fire-and-forget accounting; never faulted, passes through to the
    primary. *)

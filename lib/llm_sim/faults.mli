(** Deterministic fault injection for the simulated LLM API.

    Real commercial endpoints time out, rate-limit, return transient 5xx
    responses, and occasionally emit truncated or malformed payloads. A
    fault plan decides, per guarded API call, whether that call fails and
    how — from its {e own} seeded generator, so the client's choice stream
    is untouched: a faulted call, once retried successfully, returns
    exactly what the un-faulted call would have, and a plan with every rate
    at zero is bit-for-bit invisible.

    Same seed and same call sequence give the same fault schedule, across
    runs and across scheduler domain counts. *)

type kind = Timeout | Rate_limit | Server_error | Truncated | Malformed

type fault = {
  kind : kind;
  wait : float;
      (** simulated seconds tied to the fault: how long a timeout hung, or
          the retry-after a rate limit suggests; [0] for payload faults *)
}

type config = {
  timeout_rate : float;
  rate_limit_rate : float;
  server_error_rate : float;
  truncated_rate : float;
  malformed_rate : float;
  timeout_latency : float;  (** seconds a timed-out call hangs before failing *)
  retry_after : float;      (** wait a rate-limit response suggests *)
}

val none : config
(** Every rate zero: [draw] always succeeds. *)

val uniform : float -> config
(** [uniform r] spreads a total fault rate [r] (clamped to [0,1]) evenly
    over the five fault kinds, with default timeout/retry-after latencies. *)

val total_rate : config -> float

type t

val create : ?seed:int -> config -> t
(** A seeded plan: one uniform draw per {!draw} call decides the outcome. *)

val scripted : fault option list -> t
(** A fixed schedule for tests: the nth [draw] returns the nth element
    ([None] = the call succeeds); past the end every call succeeds. *)

val draw : t -> fault option
(** Consult the plan for the next guarded API call. *)

val injected : t -> int
(** Total faults injected so far. *)

val by_kind : t -> (kind * int) list
(** Injection counts in declaration order of {!kind}. *)

val kind_name : kind -> string

(** The simulated chat client: a capability oracle plus calibrated noise.

    [choose_repair] is the heart of the reproduction's LLM substitution.
    The caller (an agent or a baseline) presents a repair task: the UB
    category, a prompt, and the candidate edits the rule engine enumerated,
    each with an oracle quality score (obtained by actually applying the
    edit and re-running Miri plus the semantic probe). The simulated model
    then *perceives* each candidate's quality through a noisy channel whose
    fidelity is the model's skill for this category scaled by the prompt
    quality, softmax-samples at the requested temperature, and may corrupt
    its choice (hallucination). Latency and token budgets are charged to the
    simulated clock exactly like a metered API.

    All stochastic behaviour comes from the client's own seeded generator:
    same seed, same prompts, same answers. *)

type sampling = { temperature : float }

type candidate = {
  cand_id : int;
  quality : float;   (** oracle score in [0,1] — see DESIGN.md *)
  brief : string;    (** short human-readable description of the edit *)
  kind : string;     (** "replace" | "assert" | "modify" *)
}

type task = {
  category : Miri.Diag.ub_kind;
  prompt : Prompt.t;
  candidates : candidate list;
  kind_bias : (string * float) list;
      (** additive perceived-quality bias per candidate kind (KB/feedback hints) *)
}

type choice = {
  chosen : candidate;
  corrupted : bool;   (** the model "hallucinated": apply a corrupted variant *)
  confidence : float; (** the model's perceived quality of its choice *)
}

type stats = {
  mutable calls : int;
  mutable tokens_in : int;
  mutable tokens_out : int;
}

type api_error =
  | Timeout            (** the call hung for the full timeout window *)
  | Rate_limited of float  (** rejected; carries the suggested retry-after *)
  | Server_error       (** transient 5xx *)
  | Truncated          (** response cut off mid-payload *)
  | Malformed          (** response arrived but cannot be parsed *)

val api_error_name : api_error -> string

type t

val create : ?seed:int -> ?faults:Faults.t -> clock:Rb_util.Simclock.t -> Profile.t -> t
(** [faults] attaches a fault plan consulted only by the [_result] calls
    below; the plain calls below it stay fault-blind, so existing users
    are untouched. *)

val profile : t -> Profile.t
val stats : t -> stats
val clock : t -> Rb_util.Simclock.t

val choose_repair : t -> sampling -> task -> choice option
(** [None] when the task has no candidates. *)

val choose_repair_result : t -> sampling -> task -> (choice option, api_error) result
(** Like {!choose_repair}, but first consults the fault plan. A faulted
    call is metered (calls/tokens/latency) per fault kind but never
    advances the choice RNG: a retry that succeeds returns exactly what
    the un-faulted call would have. *)

val complete_result : t -> sampling -> Prompt.t -> (string, api_error) result

val complete : t -> sampling -> Prompt.t -> string
(** Generic text completion (used for feature extraction / AST sketching):
    returns a deterministic canned analysis and charges cost. *)

val charge_prompt : t -> Prompt.t -> unit
(** Account for a prompt that is sent without needing a structured answer. *)

val cost_usd : t -> float
(** Metered dollar cost of every call made so far (the reason the paper
    evaluates GPT-O1 on a category subset only). *)

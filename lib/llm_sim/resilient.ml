(* Retry + backoff + circuit breaker over the simulated client. All waits
   are charged to the shared simulated clock; all randomness (jitter) comes
   from the wrapper's own seeded RNG. With no fault plan attached to the
   primary the guarded calls take the success path on the first attempt,
   draw nothing and charge nothing extra — the wrapper is bit-for-bit
   invisible at fault rate zero. *)

type config = {
  max_retries : int;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  jitter : float;
  breaker_threshold : int;
  breaker_cooldown : float;
  deadline : float option;
}

let default_config =
  { max_retries = 3;
    backoff_base = 1.0;
    backoff_factor = 2.0;
    backoff_max = 30.0;
    jitter = 0.25;
    breaker_threshold = 5;
    breaker_cooldown = 120.0;
    deadline = None }

type breaker = Closed | Open | Half_open

type stats = {
  mutable requests : int;
  mutable retries : int;
  mutable faults : int;
  mutable breaker_trips : int;
  mutable breaker_recoveries : int;
  mutable fallback_calls : int;
  mutable give_ups : int;
  mutable deadline_hits : int;
}

type t = {
  prim : Client.t;
  fallback : Client.t option;
  cfg : config;
  rng : Rb_util.Rng.t;
  stats : stats;
  mutable breaker : breaker;
  mutable consecutive : int;
  mutable open_until : float;
  mutable repair_start : float;
  mutable repair_degraded : bool;
  mutable repair_gave_up : bool;
  mutable repair_deadline_hit : bool;
}

let now t = Rb_util.Simclock.now (Client.clock t.prim)

let create ?(seed = 11) ?(config = default_config) ?fallback prim =
  let t =
    { prim; fallback; cfg = config;
      rng = Rb_util.Rng.create seed;
      stats =
        { requests = 0; retries = 0; faults = 0; breaker_trips = 0;
          breaker_recoveries = 0; fallback_calls = 0; give_ups = 0;
          deadline_hits = 0 };
      breaker = Closed; consecutive = 0; open_until = 0.0;
      repair_start = 0.0; repair_degraded = false; repair_gave_up = false;
      repair_deadline_hit = false }
  in
  t.repair_start <- now t;
  t

let config t = t.cfg
let stats t = t.stats
let breaker_state t = t.breaker
let primary t = t.prim
let degraded t = t.repair_degraded
let gave_up t = t.repair_gave_up

let start_repair t =
  t.repair_start <- now t;
  t.repair_degraded <- false;
  t.repair_gave_up <- false;
  t.repair_deadline_hit <- false

let deadline_exceeded t =
  match t.cfg.deadline with
  | None -> false
  | Some d -> now t -. t.repair_start >= d

let note_deadline_hit t =
  if not t.repair_deadline_hit then begin
    t.repair_deadline_hit <- true;
    t.stats.deadline_hits <- t.stats.deadline_hits + 1;
    Obs.Metrics.inc "llm.deadline_hits";
    Obs.Trace.note "deadline-hit" (fun () ->
        [ ("elapsed", Obs.Trace.F (now t -. t.repair_start)) ])
  end;
  t.repair_degraded <- true

let note_deadline_skip t =
  note_deadline_hit t;
  t.repair_gave_up <- true

let trip t =
  t.breaker <- Open;
  t.open_until <- now t +. t.cfg.breaker_cooldown;
  t.stats.breaker_trips <- t.stats.breaker_trips + 1;
  t.consecutive <- 0;
  Obs.Metrics.inc "llm.breaker_trips";
  Obs.Trace.note "breaker-trip" (fun () ->
      [ ("cooldown", Obs.Trace.F t.cfg.breaker_cooldown) ])

let note_failure t ~was_half_open =
  if was_half_open then trip t (* the trial call failed: straight back open *)
  else begin
    t.consecutive <- t.consecutive + 1;
    if t.breaker = Closed && t.consecutive >= t.cfg.breaker_threshold then trip t
  end

let note_success t =
  if t.breaker = Half_open then begin
    t.stats.breaker_recoveries <- t.stats.breaker_recoveries + 1;
    Obs.Metrics.inc "llm.breaker_recoveries";
    Obs.Trace.note "breaker-recovery" (fun () -> [])
  end;
  t.breaker <- Closed;
  t.consecutive <- 0

let backoff_delay t attempt fault =
  let base =
    t.cfg.backoff_base *. (t.cfg.backoff_factor ** float_of_int attempt)
  in
  let capped = Float.min t.cfg.backoff_max base in
  let jittered =
    if t.cfg.jitter <= 0.0 then capped
    else
      capped
      *. (1.0 +. (t.cfg.jitter *. ((2.0 *. Rb_util.Rng.float t.rng) -. 1.0)))
  in
  (* a rate limit's suggested retry-after is a floor, not a suggestion *)
  match fault with
  | Client.Rate_limited wait -> Float.max jittered wait
  | _ -> jittered

let give_up t degrade =
  t.stats.give_ups <- t.stats.give_ups + 1;
  t.repair_gave_up <- true;
  t.repair_degraded <- true;
  Obs.Metrics.inc "llm.give_ups";
  Obs.Trace.note "llm-give-up" (fun () -> []);
  degrade ()

let use_fallback t run degrade =
  match t.fallback with
  | None -> give_up t degrade
  | Some fb -> (
      t.stats.fallback_calls <- t.stats.fallback_calls + 1;
      t.repair_degraded <- true;
      Obs.Metrics.inc "llm.fallback_calls";
      Obs.Trace.note "llm-fallback" (fun () ->
          [ ("model", Obs.Trace.S (Client.profile fb).Profile.name) ]);
      match run fb with Ok v -> v | Error _ -> give_up t degrade)

(* One guarded API call. [run] performs the metered call against whichever
   client it is handed; [degrade] produces the answer of last resort. *)
let guarded :
    'a. t -> (Client.t -> ('a, Client.api_error) result) -> (unit -> 'a) -> 'a
    =
 fun t run degrade ->
  t.stats.requests <- t.stats.requests + 1;
  if deadline_exceeded t then begin
    note_deadline_hit t;
    t.repair_gave_up <- true;
    degrade ()
  end
  else begin
    if t.breaker = Open && now t >= t.open_until then t.breaker <- Half_open;
    match t.breaker with
    | Open -> use_fallback t run degrade
    | Closed | Half_open ->
        let rec attempt n =
          let was_half_open = t.breaker = Half_open in
          match run t.prim with
          | Ok v ->
              note_success t;
              v
          | Error fault ->
              t.stats.faults <- t.stats.faults + 1;
              note_failure t ~was_half_open;
              if t.breaker = Open || n >= t.cfg.max_retries
                 || deadline_exceeded t
              then use_fallback t run degrade
              else begin
                let delay = backoff_delay t n fault in
                Rb_util.Simclock.charge (Client.clock t.prim) delay;
                t.stats.retries <- t.stats.retries + 1;
                Obs.Metrics.inc "llm.retries";
                Obs.Trace.note "llm-retry" (fun () ->
                    [ ("attempt", Obs.Trace.I (n + 1));
                      ("fault", Obs.Trace.S (Client.api_error_name fault));
                      ("backoff", Obs.Trace.F delay) ]);
                attempt (n + 1)
              end
        in
        attempt 0
  end

let choose_repair t sampling task =
  guarded t
    (fun c -> Client.choose_repair_result c sampling task)
    (fun () -> None)

let complete t sampling prompt =
  guarded t
    (fun c -> Client.complete_result c sampling prompt)
    (fun () -> "[degraded] completion unavailable")

let charge_prompt t prompt = Client.charge_prompt t.prim prompt

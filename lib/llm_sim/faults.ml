(* Seeded fault plans for the simulated LLM API. The plan owns its RNG:
   fault decisions never touch the client's choice stream, which is what
   makes a retried call land on the same answer the un-faulted call would
   have produced, and a zero-rate plan injectively invisible. *)

type kind = Timeout | Rate_limit | Server_error | Truncated | Malformed

type fault = { kind : kind; wait : float }

type config = {
  timeout_rate : float;
  rate_limit_rate : float;
  server_error_rate : float;
  truncated_rate : float;
  malformed_rate : float;
  timeout_latency : float;
  retry_after : float;
}

let none =
  { timeout_rate = 0.0;
    rate_limit_rate = 0.0;
    server_error_rate = 0.0;
    truncated_rate = 0.0;
    malformed_rate = 0.0;
    timeout_latency = 30.0;
    retry_after = 5.0 }

let uniform rate =
  let r = Float.max 0.0 (Float.min 1.0 rate) /. 5.0 in
  { none with
    timeout_rate = r;
    rate_limit_rate = r;
    server_error_rate = r;
    truncated_rate = r;
    malformed_rate = r }

let total_rate c =
  c.timeout_rate +. c.rate_limit_rate +. c.server_error_rate
  +. c.truncated_rate +. c.malformed_rate

let kinds = [ Timeout; Rate_limit; Server_error; Truncated; Malformed ]

let kind_index = function
  | Timeout -> 0
  | Rate_limit -> 1
  | Server_error -> 2
  | Truncated -> 3
  | Malformed -> 4

let kind_name = function
  | Timeout -> "timeout"
  | Rate_limit -> "rate-limit"
  | Server_error -> "server-error"
  | Truncated -> "truncated"
  | Malformed -> "malformed"

type plan =
  | Seeded of config * Rb_util.Rng.t
  | Scripted of fault option array * int ref

type t = { plan : plan; counts : int array }

let create ?(seed = 17) config =
  { plan = Seeded (config, Rb_util.Rng.create seed); counts = Array.make 5 0 }

let scripted schedule =
  { plan = Scripted (Array.of_list schedule, ref 0); counts = Array.make 5 0 }

let record t fault =
  let i = kind_index fault.kind in
  t.counts.(i) <- t.counts.(i) + 1;
  Some fault

let draw t =
  match t.plan with
  | Scripted (arr, cursor) ->
      if !cursor >= Array.length arr then None
      else begin
        let f = arr.(!cursor) in
        incr cursor;
        match f with None -> None | Some f -> record t f
      end
  | Seeded (c, rng) ->
      if total_rate c <= 0.0 then None
      else begin
        (* exactly one draw per call keeps the schedule independent of
           which kinds have non-zero rates *)
        let u = Rb_util.Rng.float rng in
        let pick kind wait = record t { kind; wait } in
        let t1 = c.timeout_rate in
        let t2 = t1 +. c.rate_limit_rate in
        let t3 = t2 +. c.server_error_rate in
        let t4 = t3 +. c.truncated_rate in
        let t5 = t4 +. c.malformed_rate in
        if u < t1 then pick Timeout c.timeout_latency
        else if u < t2 then pick Rate_limit c.retry_after
        else if u < t3 then pick Server_error 0.0
        else if u < t4 then pick Truncated 0.0
        else if u < t5 then pick Malformed 0.0
        else None
      end

let injected t = Array.fold_left ( + ) 0 t.counts

let by_kind t = List.map (fun k -> (k, t.counts.(kind_index k))) kinds

type sampling = { temperature : float }

type candidate = { cand_id : int; quality : float; brief : string; kind : string }

type task = {
  category : Miri.Diag.ub_kind;
  prompt : Prompt.t;
  candidates : candidate list;
  kind_bias : (string * float) list;
}

type choice = { chosen : candidate; corrupted : bool; confidence : float }

type stats = { mutable calls : int; mutable tokens_in : int; mutable tokens_out : int }

type api_error =
  | Timeout
  | Rate_limited of float
  | Server_error
  | Truncated
  | Malformed

let api_error_name = function
  | Timeout -> "timeout"
  | Rate_limited _ -> "rate-limited"
  | Server_error -> "server-error"
  | Truncated -> "truncated"
  | Malformed -> "malformed"

type t = {
  profile : Profile.t;
  rng : Rb_util.Rng.t;
  clock : Rb_util.Simclock.t;
  stats : stats;
  salt : int;  (* per-client idiosyncrasy for the sticky prior *)
  faults : Faults.t option;
}

let create ?(seed = 7) ?faults ~clock profile =
  { profile; rng = Rb_util.Rng.create seed; clock;
    stats = { calls = 0; tokens_in = 0; tokens_out = 0 }; salt = seed; faults }

let profile t = t.profile
let stats t = t.stats
let clock t = t.clock

let charge t ~tokens_in ~tokens_out =
  t.stats.calls <- t.stats.calls + 1;
  t.stats.tokens_in <- t.stats.tokens_in + tokens_in;
  t.stats.tokens_out <- t.stats.tokens_out + tokens_out;
  let total = float_of_int (tokens_in + tokens_out) in
  Rb_util.Simclock.charge t.clock
    (t.profile.Profile.latency_base +. (total /. 1000.0 *. t.profile.Profile.latency_per_1k));
  Obs.Metrics.inc "llm.calls";
  Obs.Metrics.inc ~by:(tokens_in + tokens_out) "llm.tokens";
  Obs.Trace.note "llm-call" (fun () ->
      [ ("model", Obs.Trace.S t.profile.Profile.name);
        ("tokens_in", Obs.Trace.I tokens_in);
        ("tokens_out", Obs.Trace.I tokens_out) ])

let charge_prompt t prompt =
  charge t ~tokens_in:(Prompt.tokens prompt) ~tokens_out:t.profile.Profile.completion_tokens

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let choose_repair t sampling task =
  match task.candidates with
  | [] -> None
  | candidates ->
    charge t ~tokens_in:(Prompt.tokens task.prompt)
      ~tokens_out:t.profile.Profile.completion_tokens;
    let prompt_quality = Prompt.quality task.prompt in
    let skill = t.profile.Profile.skill task.category in
    (* How faithfully the model perceives true candidate quality. The strong
       prompt-quality dependence is the calibration heart of the simulation:
       a bare code dump (baselines) leaves even a capable model mostly
       guessing, while features + pruned AST + KB hints (RustBrain) let it
       rank candidates reliably — matching the standalone-vs-framework gaps
       the paper reports. *)
    let fidelity = clamp 0.05 0.98 (skill *. (0.05 +. (0.95 *. prompt_quality))) in
    let temp = clamp 0.01 2.0 sampling.temperature in
    (* The misperception noise has two parts. The *sticky* prior is a
       deterministic per-client, per-candidate bias — the model's
       idiosyncratic opinion, which re-asking at low temperature just
       repeats (the paper's "lower temperatures limit flexibility,
       potentially missing opportunities"). Temperature interpolates toward
       fresh randomness, which is what makes retries and multi-solution
       sampling productive. *)
    let sticky c =
      (* digits are masked out: candidate labels embed AST node ids, which
         differ between otherwise-identical parses and must not influence
         behaviour *)
      let normalized =
        String.map (fun ch -> if ch >= '0' && ch <= '9' then '#' else ch) c.brief
      in
      let h = Hashtbl.hash (t.salt, normalized, c.kind) in
      float_of_int (h land 0xFFFFF) /. 1048576.0
    in
    let perceived c =
      let bias = Option.value (List.assoc_opt c.kind task.kind_bias) ~default:0.0 in
      let fresh = Rb_util.Rng.float t.rng in
      let w = clamp 0.0 1.0 temp in
      (* per-draw choice keeps the noise's full spread at every temperature;
         only the *resampling* behaviour changes with it *)
      let noise = if Rb_util.Rng.float t.rng < w then fresh else sticky c in
      (fidelity *. c.quality) +. ((1.0 -. fidelity) *. noise) +. bias
    in
    let scored = List.map (fun c -> (c, perceived c)) candidates in
    (* softmax sampling: temperature controls exploration *)
    let weights =
      List.map (fun (c, s) -> (c, exp (s /. (0.10 +. (0.45 *. temp))))) scored
    in
    let chosen = Rb_util.Rng.pick_weighted t.rng weights in
    let confidence =
      match List.assoc_opt chosen.cand_id (List.map (fun (c, s) -> (c.cand_id, s)) scored) with
      | Some s -> clamp 0.0 1.0 s
      | None -> 0.5
    in
    (* hallucination grows with temperature and shrinks with prompt quality *)
    let corrupt_p =
      clamp 0.0 0.9
        (t.profile.Profile.hallucination *. (0.55 +. temp) *. (1.9 -. (1.6 *. prompt_quality)))
    in
    let corrupted = Rb_util.Rng.bernoulli t.rng corrupt_p in
    Some { chosen; corrupted; confidence }

let cost_usd t =
  (float_of_int t.stats.tokens_in /. 1000.0 *. t.profile.Profile.usd_per_1k_in)
  +. (float_of_int t.stats.tokens_out /. 1000.0 *. t.profile.Profile.usd_per_1k_out)

let complete t _sampling prompt =
  charge t ~tokens_in:(Prompt.tokens prompt) ~tokens_out:t.profile.Profile.completion_tokens;
  (* deterministic canned analysis: enough for feature-extraction stages whose
     real output in this reproduction is structural, not textual *)
  Printf.sprintf "[%s] analysis of %d prompt tokens: acknowledged."
    t.profile.Profile.name (Prompt.tokens prompt)

(* Fault injection. A faulted call is still metered like the real thing:
   a timeout hangs for the full timeout window with the prompt already
   sent; a rate limit is rejected cheaply before the prompt is processed;
   a 5xx burns the prompt tokens; truncated/malformed responses are paid
   for in full and only then discovered to be useless. Crucially none of
   these paths touches [t.rng], so the choice stream is exactly the one
   an un-faulted client would consume. *)
let inject_raw t prompt =
  match t.faults with
  | None -> None
  | Some plan ->
      (match Faults.draw plan with
      | None -> None
      | Some f ->
          let tokens_in = Prompt.tokens prompt in
          (match f.Faults.kind with
          | Faults.Timeout ->
              t.stats.calls <- t.stats.calls + 1;
              t.stats.tokens_in <- t.stats.tokens_in + tokens_in;
              Rb_util.Simclock.charge t.clock f.Faults.wait;
              Some Timeout
          | Faults.Rate_limit ->
              t.stats.calls <- t.stats.calls + 1;
              Rb_util.Simclock.charge t.clock t.profile.Profile.latency_base;
              Some (Rate_limited f.Faults.wait)
          | Faults.Server_error ->
              t.stats.calls <- t.stats.calls + 1;
              t.stats.tokens_in <- t.stats.tokens_in + tokens_in;
              Rb_util.Simclock.charge t.clock t.profile.Profile.latency_base;
              Some Server_error
          | Faults.Truncated ->
              charge t ~tokens_in
                ~tokens_out:(t.profile.Profile.completion_tokens / 2);
              Some Truncated
          | Faults.Malformed ->
              charge t ~tokens_in ~tokens_out:t.profile.Profile.completion_tokens;
              Some Malformed))

let inject t prompt =
  match inject_raw t prompt with
  | None -> None
  | Some e ->
    Obs.Metrics.inc "llm.faults";
    Obs.Trace.note "llm-fault" (fun () ->
        [ ("fault", Obs.Trace.S (api_error_name e)) ]);
    Some e

let choose_repair_result t sampling task =
  match inject t task.prompt with
  | Some e -> Error e
  | None -> Ok (choose_repair t sampling task)

let complete_result t sampling prompt =
  match inject t prompt with
  | Some e -> Error e
  | None -> Ok (complete t sampling prompt)

type value = I of int | F of float | S of string | B of bool

type attrs = (string * value) list

type kind = Span | Event

type record = {
  kind : kind;
  name : string;
  t : float;
  dur : float;
  wall_ms : float;
  attrs : attrs;
}

type t = {
  mutable now : unit -> float;
  wall : bool;
  emit_rec : record -> unit;
  close_fn : unit -> unit;
  mutable closed : bool;
}

let null () =
  { now = (fun () -> 0.);
    wall = false;
    emit_rec = ignore;
    close_fn = ignore;
    closed = false }

let memory ?ring ?(wall = false) () =
  let q = Queue.create () in
  let emit_rec r =
    Queue.push r q;
    match ring with
    | Some cap when Queue.length q > cap -> ignore (Queue.pop q)
    | _ -> ()
  in
  ( { now = (fun () -> 0.); wall; emit_rec; close_fn = ignore; closed = false },
    fun () -> List.of_seq (Queue.to_seq q) )

(* Floats are printed with fixed precision: simulated times are sums of
   configured charges, so %.6f is exact enough to be stable, and fixed
   width keeps traces byte-comparable. *)
let buf_float b f = Buffer.add_string b (Printf.sprintf "%.6f" f)

let buf_value b = function
  | I i -> Buffer.add_string b (string_of_int i)
  | F f -> buf_float b f
  | S s -> Buffer.add_string b (Rb_util.Json.escape s)
  | B true -> Buffer.add_string b "true"
  | B false -> Buffer.add_string b "false"

let buf_jsonl ?(wall = false) b r =
  Buffer.add_string b
    (match r.kind with Span -> {|{"k":"span","name":|} | Event -> {|{"k":"event","name":|});
  Buffer.add_string b (Rb_util.Json.escape r.name);
  Buffer.add_string b {|,"t":|};
  buf_float b r.t;
  if r.kind = Span then begin
    Buffer.add_string b {|,"dur":|};
    buf_float b r.dur
  end;
  if wall then begin
    Buffer.add_string b {|,"wall_ms":|};
    Buffer.add_string b (Printf.sprintf "%.3f" r.wall_ms)
  end;
  if r.attrs <> [] then begin
    Buffer.add_string b {|,"attrs":{|};
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Rb_util.Json.escape k);
        Buffer.add_char b ':';
        buf_value b v)
      r.attrs;
    Buffer.add_char b '}'
  end;
  Buffer.add_char b '}'

let to_jsonl ?wall r =
  let b = Buffer.create 128 in
  buf_jsonl ?wall b r;
  Buffer.contents b

let of_jsonl line =
  let open Rb_util.Json in
  match parse line with
  | Error e -> Error e
  | Ok j -> (
    let kind =
      match member "k" j with
      | Some (Str "span") -> Some Span
      | Some (Str "event") -> Some Event
      | _ -> None
    in
    match (kind, member "name" j, member "t" j) with
    | Some kind, Some (Str name), Some (Num t) ->
      let fnum key d =
        match member key j with Some (Num f) -> f | _ -> d
      in
      let attrs =
        match member "attrs" j with
        | Some (Obj kvs) ->
          List.map
            (fun (k, v) ->
              ( k,
                match v with
                | Num n when Float.is_integer n && Float.abs n < 1e15 ->
                  I (int_of_float n)
                | Num n -> F n
                | Str s -> S s
                | Bool b -> B b
                | other -> S (to_string other) ))
            kvs
        | _ -> []
      in
      Ok
        { kind; name; t; dur = fnum "dur" 0.; wall_ms = fnum "wall_ms" 0.;
          attrs }
    | _ -> Error "trace record missing k/name/t")

let file ?(wall = false) path =
  let b = Buffer.create 4096 in
  let emit_rec r =
    buf_jsonl ~wall b r;
    Buffer.add_char b '\n'
  in
  let close_fn () =
    Rb_util.Fsfile.write_atomic path (Buffer.contents b)
  in
  { now = (fun () -> 0.); wall; emit_rec; close_fn; closed = false }

let tee a b =
  { now = (fun () -> 0.);
    wall = a.wall || b.wall;
    emit_rec =
      (fun r ->
        a.emit_rec r;
        b.emit_rec r);
    close_fn =
      (fun () ->
        a.close_fn ();
        b.close_fn ());
    closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let wall_enabled t = t.wall

let set_time_source t now = t.now <- now

let emit t r = t.emit_rec r

let event t ?(attrs = []) name =
  emit t { kind = Event; name; t = t.now (); dur = 0.; wall_ms = 0.; attrs }

let span tr ?attrs ?post name f =
  let t0 = tr.now () in
  let w0 = if tr.wall then Unix.gettimeofday () else 0. in
  let finish result_attrs raised =
    let dur = tr.now () -. t0 in
    let wall_ms = if tr.wall then (Unix.gettimeofday () -. w0) *. 1000. else 0. in
    let base = match attrs with Some g -> g () | None -> [] in
    let attrs =
      base @ result_attrs @ (if raised then [ ("raised", B true) ] else [])
    in
    tr.emit_rec { kind = Span; name; t = t0; dur; wall_ms; attrs }
  in
  match f () with
  | v ->
    finish (match post with Some p -> p v | None -> []) false;
    v
  | exception e ->
    finish [] true;
    raise e

(* The ambient sink is domain-local so worker domains trace into their own
   per-job buffers with no synchronization; the cell is an option ref so
   installation/restoration is two writes. *)
let ambient_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ambient () = !(Domain.DLS.get ambient_key)

let with_ambient tr f =
  let cell = Domain.DLS.get ambient_key in
  let prev = !cell in
  cell := Some tr;
  Fun.protect ~finally:(fun () -> cell := prev) f

let without_ambient f =
  let cell = Domain.DLS.get ambient_key in
  let prev = !cell in
  cell := None;
  Fun.protect ~finally:(fun () -> cell := prev) f

let set_ambient_time_source now =
  match ambient () with None -> () | Some tr -> set_time_source tr now

let in_span ?attrs ?post name f =
  match ambient () with
  | None -> f ()
  | Some tr -> span tr ?attrs ?post name f

let note name attrs =
  match ambient () with
  | None -> ()
  | Some tr -> event tr ~attrs:(attrs ()) name

type counter = int ref
type gauge = float ref

type histogram = {
  buckets : float array;
  counts : int array; (* length = Array.length buckets + 1; last = overflow *)
  mutable sum : float;
  mutable n : int;
}

type registry = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histos : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    histos = Hashtbl.create 8 }

let find_or_add tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = mk () in
    Hashtbl.add tbl name v;
    v

let counter reg name = find_or_add reg.counters name (fun () -> ref 0)
let incr ?(by = 1) c = c := !c + by
let counter_value c = !c

let gauge reg name = find_or_add reg.gauges name (fun () -> ref 0.)
let set g v = g := v
let gauge_value g = !g

let default_buckets = [| 0.01; 0.1; 1.; 10.; 60.; 300.; 1800. |]

let histogram ?(buckets = default_buckets) reg name =
  find_or_add reg.histos name (fun () ->
      { buckets = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        sum = 0.;
        n = 0 })

let bucket_index buckets v =
  let n = Array.length buckets in
  let i = ref 0 in
  while !i < n && v > buckets.(!i) do
    Stdlib.incr i
  done;
  !i

let observe h v =
  h.counts.(bucket_index h.buckets v) <- h.counts.(bucket_index h.buckets v) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1

let histogram_count h = h.n
let histogram_sum h = h.sum

let merge_into ~into src =
  Hashtbl.iter (fun name c -> incr ~by:!c (counter into name)) src.counters;
  Hashtbl.iter
    (fun name g ->
      let dst = gauge into name in
      if !g > !dst then dst := !g)
    src.gauges;
  Hashtbl.iter
    (fun name h ->
      match Hashtbl.find_opt into.histos name with
      | None ->
        Hashtbl.add into.histos name
          { h with buckets = Array.copy h.buckets; counts = Array.copy h.counts }
      | Some dst when dst.buckets = h.buckets ->
        Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) h.counts;
        dst.sum <- dst.sum +. h.sum;
        dst.n <- dst.n + h.n
      | Some _ -> (* bucket mismatch: keep the destination untouched *) ())
    src.histos

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json reg =
  let open Rb_util.Json in
  Obj
    [ ( "counters",
        Obj
          (List.map (fun (k, c) -> (k, Num (float_of_int !c)))
             (sorted_bindings reg.counters)) );
      ( "gauges",
        Obj (List.map (fun (k, g) -> (k, Num !g)) (sorted_bindings reg.gauges)) );
      ( "histograms",
        Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Obj
                   [ ( "buckets",
                       List
                         (Array.to_list (Array.map (fun b -> Num b) h.buckets))
                     );
                     ( "counts",
                       List
                         (Array.to_list
                            (Array.map (fun c -> Num (float_of_int c)) h.counts))
                     );
                     ("sum", Num h.sum);
                     ("count", Num (float_of_int h.n)) ] ))
             (sorted_bindings reg.histos)) ) ]

let render reg =
  let b = Buffer.create 256 in
  List.iter
    (fun (k, c) -> Buffer.add_string b (Printf.sprintf "%-32s %d\n" k !c))
    (sorted_bindings reg.counters);
  List.iter
    (fun (k, g) -> Buffer.add_string b (Printf.sprintf "%-32s %.3f\n" k !g))
    (sorted_bindings reg.gauges);
  List.iter
    (fun (k, h) ->
      let mean = if h.n = 0 then 0. else h.sum /. float_of_int h.n in
      Buffer.add_string b
        (Printf.sprintf "%-32s n=%d sum=%.3f mean=%.3f\n" k h.n h.sum mean))
    (sorted_bindings reg.histos);
  Buffer.contents b

let ambient_key : registry ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (create ()))

let ambient () = !(Domain.DLS.get ambient_key)

let with_registry reg f =
  let cell = Domain.DLS.get ambient_key in
  let prev = !cell in
  cell := reg;
  Fun.protect ~finally:(fun () -> cell := prev) f

let inc ?by name = incr ?by (counter (ambient ()) name)
let set_gauge name v = set (gauge (ambient ()) name) v
let observe_s name v = observe (histogram (ambient ()) name) v

(** Counters, gauges, and fixed-bucket histograms in a registry.

    Hot paths touch only their domain's ambient registry (plain [Hashtbl]
    plus [int ref]/[float ref] cells — no atomics, no locks); the
    scheduler gives each job a fresh registry and folds them into the
    caller's at join, so cross-domain merging happens exactly once per
    job, off the hot path.

    Unlike tracing, the ambient registry always exists (counting is cheap
    and unconditional); it only becomes visible when a caller installs a
    registry it intends to read ({!with_registry}) or asks the scheduler
    to merge per-job registries. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

(** {1 Instruments} *)

val counter : registry -> string -> counter
(** Find-or-create by name. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : registry -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
(** Simulated-seconds scale: [0.01; 0.1; 1; 10; 60; 300; 1800]. *)

val histogram : ?buckets:float array -> registry -> string -> histogram
(** Find-or-create; [buckets] must be sorted ascending and is fixed at
    first creation (later calls reuse the existing instrument). *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Aggregation} *)

val merge_into : into:registry -> registry -> unit
(** Counters add, gauges keep the max, histograms with identical buckets
    add bucket-wise (a histogram absent from [into] is copied). *)

val to_json : registry -> Rb_util.Json.t
(** [{"counters":{..},"gauges":{..},"histograms":{..}}] with every name
    sorted, so output is deterministic. *)

val render : registry -> string
(** Plain aligned table for terminals, names sorted; empty string for an
    empty registry. *)

(** {1 Ambient registry} *)

val ambient : unit -> registry
val with_registry : registry -> (unit -> 'a) -> 'a
(** Install [registry] as this domain's ambient registry for the call. *)

val inc : ?by:int -> string -> unit
(** Bump a counter in the ambient registry. *)

val set_gauge : string -> float -> unit
val observe_s : string -> float -> unit
(** Observe into an ambient histogram with {!default_buckets}. *)

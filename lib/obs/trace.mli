(** Structured tracing: typed span/event records to a pluggable sink.

    Timestamps come from the simulated clock of whatever session is
    running ({!set_time_source}), so a seeded campaign's trace is
    byte-identical run to run. Wall-clock durations are measured only by
    sinks created with [~wall:true] (interactive [fix --profile]); a
    campaign sink stays sim-time-only and therefore deterministic.

    Instrumentation sites never hold a sink: they consult the ambient
    domain-local sink ({!ambient}) through the gated helpers {!in_span}
    and {!note}, which cost a DLS read and a [None] match when tracing is
    off — no attribute closures run, nothing is formatted. *)

type value = I of int | F of float | S of string | B of bool

type attrs = (string * value) list

type kind = Span | Event

type record = {
  kind : kind;
  name : string;
  t : float;       (** start time on the simulated clock, seconds *)
  dur : float;     (** simulated duration; [0.] for events *)
  wall_ms : float; (** wall-clock ms; [0.] unless the sink is wall-enabled *)
  attrs : attrs;
}

type t
(** A live sink. *)

(** {1 Sinks} *)

val null : unit -> t
(** Swallows every record. The ambient default is no sink at all, so this
    exists mainly for tests and tee partners. *)

val memory : ?ring:int -> ?wall:bool -> unit -> t * (unit -> record list)
(** In-memory buffer and a getter returning records in emission order.
    [ring] bounds it (oldest dropped); unbounded by default. *)

val file : ?wall:bool -> string -> t
(** Buffers JSONL lines; {!close} writes the file atomically via
    [Rb_util.Fsfile.write_channel]. *)

val tee : t -> t -> t
(** Every record to both sinks; wall-enabled if either side is. *)

val close : t -> unit
(** Flush/finalize (writes the file for {!file} sinks). Idempotent. *)

val wall_enabled : t -> bool

(** {1 Time} *)

val set_time_source : t -> (unit -> float) -> unit
(** Install the simulated-clock reader for subsequent records (default
    always returns [0.]). A repair session installs its own clock here. *)

val set_ambient_time_source : (unit -> float) -> unit
(** {!set_time_source} on the ambient sink, if any. *)

(** {1 Ambient sink} *)

val ambient : unit -> t option
val with_ambient : t -> (unit -> 'a) -> 'a
(** Install [t] as this domain's ambient sink for the call (restored on
    exit, exceptions included). *)

val without_ambient : (unit -> 'a) -> 'a
(** Run with no ambient sink — for work whose very occurrence is
    nondeterministic (e.g. populating a cross-session memo, which depends
    on which jobs a domain happened to run first) and must therefore stay
    invisible to deterministic traces. *)

(** {1 Emission} *)

val emit : t -> record -> unit

val event : t -> ?attrs:attrs -> string -> unit
(** Emit an event stamped with the sink's current time. *)

val span :
  t -> ?attrs:(unit -> attrs) -> ?post:('a -> attrs) -> string ->
  (unit -> 'a) -> 'a
(** [span t name f] runs [f], emitting one [Span] record on completion
    covering its simulated duration (and wall ms when enabled). [attrs]
    is forced only at completion; [post] derives attributes from the
    result. If [f] raises, the span is still emitted with a
    [("raised", B true)] attribute and the exception rethrown. *)

val in_span :
  ?attrs:(unit -> attrs) -> ?post:('a -> attrs) -> string ->
  (unit -> 'a) -> 'a
(** {!span} against the ambient sink; just runs [f] when tracing is off. *)

val note : string -> (unit -> attrs) -> unit
(** {!event} against the ambient sink; the attribute closure never runs
    when tracing is off. *)

(** {1 JSONL} *)

val to_jsonl : ?wall:bool -> record -> string
(** One JSON object, no trailing newline. [wall] (default false) includes
    the [wall_ms] field — campaign traces leave it out to stay
    deterministic. *)

val of_jsonl : string -> (record, string) Stdlib.result

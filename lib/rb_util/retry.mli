(** Retry-on-EINTR for blocking syscalls.

    POSIX lets any blocking call return [EINTR] when a signal arrives;
    without a uniform restart wrapper each call site either forgets the
    case (and a signal during [select] raises out of the server's event
    loop) or hand-rolls its own loop. All serve-layer syscalls go through
    {!on_eintr}. *)

val on_eintr : (unit -> 'a) -> 'a
(** Run [f], restarting it as long as it raises
    [Unix.Unix_error (EINTR, _, _)]. Every other outcome — value or
    exception — passes through untouched. *)

val on_eintr_opt : deadline:float -> (unit -> 'a) -> 'a option
(** Like {!on_eintr}, but gives up with [None] once
    [Unix.gettimeofday () >= deadline] — for timeout-bounded waits where
    a signal storm must not extend the wait forever. *)

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the same
   checksum gzip and PNG stamp on their members, chosen here because a
   torn or bit-flipped store record must be *detected*, not silently
   parsed into a wrong submission. Table-driven, one table shared by all
   domains: the table is written once before any reader can exist
   (top-level initialization runs before [Domain.spawn] is reachable). *)

let table =
  let t = Array.make 256 0l in
  for n = 0 to 255 do
    let c = ref (Int32.of_int n) in
    for _ = 0 to 7 do
      c :=
        if Int32.logand !c 1l <> 0l then
          Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
        else Int32.shift_right_logical !c 1
    done;
    t.(n) <- !c
  done;
  t

let update crc s pos len =
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let string s = update 0l s 0 (String.length s)

let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if String.length s <> 8 then None
  else
    (* Int32.of_string reads "0x…" as unsigned, so crcs with the top bit
       set round-trip *)
    try Some (Int32.of_string ("0x" ^ s)) with Failure _ -> None

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -- printing --------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Num f -> number_to_string f
  | Str s -> escape s
  | List xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> escape k ^ ":" ^ to_string v) fields)
    ^ "}"

(* -- parsing ---------------------------------------------------------- *)

exception Bad of string * int

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = input.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let code =
            (hex_digit input.[!pos] lsl 12)
            lor (hex_digit input.[!pos + 1] lsl 8)
            lor (hex_digit input.[!pos + 2] lsl 4)
            lor hex_digit input.[!pos + 3]
          in
          pos := !pos + 4;
          (* UTF-8 encode; surrogate pairs are not needed for our own output
             but decode to the replacement of each half rather than failing *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail "bad escape");
        go ())
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        advance ();
        incr d
      done;
      if !d = 0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    float_of_string (String.sub input start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "%s at offset %d" msg at)
  | exception Failure _ -> Error "bad number"

(* -- accessors -------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 2.0 ** 53.0 ->
    Some (int_of_float f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None

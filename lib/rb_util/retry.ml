(* EINTR is not an error: a signal (SIGCHLD from a reaped runner process,
   a profiler's SIGPROF, a debugger attach) delivered during a blocking
   syscall makes it return early with nothing done. Every select/read/
   write/accept in the event loop and the blocking client must restart,
   or a stray signal tears down a healthy connection — or the whole
   server loop. *)
let rec on_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> on_eintr f

let rec on_eintr_opt ~deadline f =
  match f () with
  | v -> Some v
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    if Unix.gettimeofday () >= deadline then None else on_eintr_opt ~deadline f

(** CRC-32 (IEEE, the gzip/PNG polynomial) for store-record integrity.

    Fast enough for small durable records, and — unlike a truncated
    digest of [Digest] — standard enough that an operator can verify a
    record header with [crc32] from coreutils-adjacent tooling. *)

val string : string -> int32
(** CRC-32 of the whole string. *)

val update : int32 -> string -> int -> int -> int32
(** [update crc s pos len] extends [crc] over [s.[pos .. pos+len-1]]. *)

val to_hex : int32 -> string
(** Fixed-width lowercase 8-hex-digit rendering. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)

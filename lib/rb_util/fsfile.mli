(** Crash-safe file output: write to a temporary sibling, fsync, atomic
    rename.

    A report file that a crash can leave half-written is worse than no file:
    downstream tooling reads a torn JSON array or a truncated CSV without
    noticing. Every file this repository produces therefore goes through
    [write_atomic]/[write_lines]: the content lands in [<path>.tmp.<pid>],
    is fsynced, and is renamed over [path] in one atomic step — a reader
    observes either the complete old file or the complete new one, never a
    mixture. The containing directory is fsynced after the rename (best
    effort) so the new directory entry itself survives power loss. *)

val mkdir_p : string -> unit
(** Create the directory and any missing parents (mode 0o755); existing
    directories are fine. Each newly created directory's parent is fsynced
    ({!fsync_dir}) so the directory entry itself survives power loss — a
    journal or server state directory that exists in memory only is a
    durability lie. *)

val fsync_dir : string -> unit
(** Flush a directory's entry table to stable storage (best effort: some
    filesystems refuse fsync on a directory fd, which is non-fatal). Called
    automatically after every {!write_atomic}/{!write_channel} rename and
    by {!mkdir_p}; exposed for callers that rename files themselves. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] durably replaces [path] with [contents]. *)

val write_channel : string -> (out_channel -> unit) -> unit
(** [write_channel path emit] like {!write_atomic} but streams through an
    [out_channel], so a large report never has to be concatenated in
    memory; [emit] writes the content, the helper fsyncs and renames. If
    [emit] raises, the temporary file is removed and [path] is untouched. *)

val read : string -> string option
(** Whole-file read; [None] when the file does not exist or is unreadable. *)

val remove_if_exists : string -> unit

(** {2 Checksummed records}

    Small durable state records (the repair server's admission queue and
    markers) are wrapped in a one-line header — magic+version, payload
    length, payload CRC-32 — so a later fsck can tell an intact record
    from a torn tail from a bit flip instead of feeding rotted bytes to a
    JSON parser and hoping. Records written before the header existed are
    classified [Legacy] and accepted unchanged. *)

type checked =
  | Intact of string   (** header present; length and CRC both verify *)
  | Legacy of string   (** no header: a pre-checksum record, trusted as-is *)
  | Healed of string
      (** declared prefix verifies; junk bytes after it were dropped *)
  | Torn               (** payload shorter than the header declares *)
  | Corrupt of string  (** full-length payload failing its CRC (reason) *)
  | Missing            (** file absent or unreadable *)

val write_checked : string -> string -> unit
(** [write_checked path payload] durably writes [payload] under a
    [%RB1 <len> <crc32>] header (atomic, fsynced like {!write_atomic}). *)

val read_checked : string -> checked
(** Read and classify; never raises. *)

val classify_checked : string -> checked
(** Classify already-read bytes (never returns [Missing]). *)

val checked_payload : checked -> string option
(** The usable payload of [Intact]/[Legacy]/[Healed]; [None] otherwise. *)

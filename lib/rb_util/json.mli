(** Minimal JSON: a value type, a strict recursive-descent parser, and a
    printer.

    The durability layer stores campaign records as JSON lines (one
    self-contained object per line) and must read them back after a crash,
    possibly finding a torn or corrupted tail. The parser therefore never
    raises on bad input — every failure is an [Error] with a position — so
    callers can treat "does not parse" as "discard this segment" rather
    than as a fatal condition.

    Numbers are represented as [float]; every integer the reproduction
    emits is far below 2^53, so round-tripping through [Num] is exact. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse exactly one JSON value (surrounding whitespace allowed); trailing
    garbage is an error. Never raises. *)

val to_string : t -> string
(** Compact one-line rendering; strings are escaped as in
    {!Rustbrain.Report.to_json} (control characters as [\u00XX]). *)

val escape : string -> string
(** The quoted, escaped form of a string literal. *)

(** Accessors: total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the field in an [Obj]. *)

val to_str : t -> string option
val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option

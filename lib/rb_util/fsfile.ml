(* Directory-entry durability: after renaming into [dir] (or creating a
   child directory), fsync the directory so the new entry itself is on
   stable storage. Not every filesystem supports fsync on a directory fd;
   failure is non-fatal. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    match Unix.mkdir dir 0o755 with
    | () ->
      (* a freshly created directory is itself a new entry in its parent:
         without this fsync a crash can lose the whole directory — and with
         it every file later fsynced inside it *)
      fsync_dir (Filename.dirname dir)
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_channel path emit =
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (* Any failure before the rename — the writer itself, but also flush,
     close or the rename (ENOSPC, EROFS, quota) — must not leave the tmp
     file beside the target; remove it and re-raise the original. *)
  (match
     emit oc;
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
     close_out oc
   with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  (match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  fsync_dir (Filename.dirname path)

let write_atomic path contents =
  write_channel path (fun oc -> output_string oc contents)

let read path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
    match really_input_string ic (in_channel_length ic) with
    | s ->
      close_in ic;
      Some s
    | exception End_of_file ->
      close_in_noerr ic;
      None
    | exception Sys_error _ ->
      close_in_noerr ic;
      None)

let remove_if_exists path =
  try Sys.remove path with Sys_error _ -> ()

(* -- checksummed records ------------------------------------------------- *)

(* One header line — magic+version, payload length, payload CRC-32 — then
   the payload verbatim. The length makes a torn tail distinguishable from
   a bit flip: a short payload is truncation (heal-or-quarantine by policy),
   a full-length payload with a wrong CRC is corruption; extra bytes after
   the declared length are a healable appended tail. Records written
   before this format (no magic) are legacy and accepted as-is. *)

let checked_magic = "%RB1"

type checked =
  | Intact of string       (* header present, length and CRC both check out *)
  | Legacy of string       (* pre-checksum record: no magic header *)
  | Healed of string       (* declared prefix intact; trailing junk dropped *)
  | Torn                   (* payload shorter than declared *)
  | Corrupt of string      (* full-length payload, CRC mismatch (reason) *)
  | Missing

let render_checked payload =
  Printf.sprintf "%s %d %s\n%s" checked_magic (String.length payload)
    (Crc32.to_hex (Crc32.string payload))
    payload

let write_checked path payload = write_atomic path (render_checked payload)

let classify_checked s =
  let starts_with_magic =
    String.length s >= String.length checked_magic
    && String.sub s 0 (String.length checked_magic) = checked_magic
  in
  if not starts_with_magic then Legacy s
  else
    match String.index_opt s '\n' with
    | None -> Torn (* header itself truncated *)
    | Some nl -> (
      let header = String.sub s 0 nl in
      let body = String.sub s (nl + 1) (String.length s - nl - 1) in
      match String.split_on_char ' ' header with
      | [ magic; len; crc ] when magic = checked_magic -> (
        match (int_of_string_opt len, Crc32.of_hex crc) with
        | Some len, Some crc when len >= 0 ->
          let have = String.length body in
          if have < len then Torn
          else
            let payload = String.sub body 0 len in
            if Crc32.string payload <> crc then
              Corrupt "checksum mismatch"
            else if have = len then Intact payload
            else Healed payload
        | _ -> Corrupt "unparseable record header")
      | _ -> Corrupt "unparseable record header")

let read_checked path =
  match read path with
  | None -> Missing
  | Some s -> classify_checked s

let checked_payload = function
  | Intact p | Legacy p | Healed p -> Some p
  | Torn | Corrupt _ | Missing -> None

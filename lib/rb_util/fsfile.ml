(* Directory-entry durability: after renaming into [dir] (or creating a
   child directory), fsync the directory so the new entry itself is on
   stable storage. Not every filesystem supports fsync on a directory fd;
   failure is non-fatal. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    match Unix.mkdir dir 0o755 with
    | () ->
      (* a freshly created directory is itself a new entry in its parent:
         without this fsync a crash can lose the whole directory — and with
         it every file later fsynced inside it *)
      fsync_dir (Filename.dirname dir)
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_channel path emit =
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (* Any failure before the rename — the writer itself, but also flush,
     close or the rename (ENOSPC, EROFS, quota) — must not leave the tmp
     file beside the target; remove it and re-raise the original. *)
  (match
     emit oc;
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc)
      with Unix.Unix_error _ -> ());
     close_out oc
   with
  | () -> ()
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  (match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  fsync_dir (Filename.dirname path)

let write_atomic path contents =
  write_channel path (fun oc -> output_string oc contents)

let read path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
    match really_input_string ic (in_channel_length ic) with
    | s ->
      close_in ic;
      Some s
    | exception End_of_file ->
      close_in_noerr ic;
      None
    | exception Sys_error _ ->
      close_in_noerr ic;
      None)

let remove_if_exists path =
  try Sys.remove path with Sys_error _ -> ()

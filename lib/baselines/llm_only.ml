type config = {
  model : Llm_sim.Profile.model;
  temperature : float;
  attempts : int;
  seed : int;
}

let default_config =
  { model = Llm_sim.Profile.Gpt4; temperature = 0.5; attempts = 2; seed = 1 }

type session = {
  cfg : config;
  sclock : Rb_util.Simclock.t;
  client : Llm_sim.Client.t;
  rng : Rb_util.Rng.t;
  cache : Miri.Machine.Cache.t;
}

let create_session cfg =
  let sclock = Rb_util.Simclock.create () in
  let client =
    Llm_sim.Client.create ~seed:cfg.seed ~clock:sclock (Llm_sim.Profile.get cfg.model)
  in
  { cfg; sclock; client; rng = Rb_util.Rng.create (cfg.seed * 17 + 3);
    cache = Miri.Machine.Cache.create () }

let clock s = s.sclock
let verification_cache s = s.cache

let cost_usd s = Llm_sim.Client.cost_usd s.client

let check_errors sclock program inputs =
  Rb_util.Simclock.charge sclock (Rustbrain.Env.verify_cost program);
  match Minirust.Typecheck.check program with
  | Error errors -> (List.length errors, [], None)
  | Ok info ->
    let config =
      { Miri.Machine.default_config with
        Miri.Machine.mode = Miri.Machine.Collect 25; seed = 42; max_steps = 200_000;
        inputs; trace = false }
    in
    let r = Miri.Machine.run ~config program info in
    ( r.Miri.Machine.error_count,
      r.Miri.Machine.diags,
      match r.Miri.Machine.outcome with
      | Miri.Machine.Panicked m -> Some m
      | _ -> None )

let repair session (case : Dataset.Case.t) : Rustbrain.Report.t =
  (* fixed id origin per repair: keeps reports byte-identical under the
     Domain-parallel scheduler (see Pipeline.repair_common) *)
  Minirust.Ast.scoped_ids @@ fun () ->
  let cfg = session.cfg in
  let start = Rb_util.Simclock.now session.sclock in
  let calls0 = (Llm_sim.Client.stats session.client).Llm_sim.Client.calls in
  let inputs = match case.Dataset.Case.probes with [] -> [||] | p :: _ -> p in
  let scorer = Dataset.Semantic.score ~cache:session.cache case in
  let reference = Dataset.Case.fixed case in
  let program = ref (Dataset.Case.buggy case) in
  let n_sequence = ref [] in
  let iterations = ref 0 in
  let errors, diags0, panicked0 = check_errors session.sclock !program inputs in
  n_sequence := [ errors ];
  let cur_errors = ref errors in
  let cur_diags = ref diags0 in
  let cur_panic = ref panicked0 in
  let attempt () =
    incr iterations;
    let ctx =
      { Repairs.Rule.program = !program;
        diag = (match !cur_diags with d :: _ -> Some d | [] -> None);
        panicked = !cur_panic }
    in
    let candidates =
      Repairs.Candidates.enumerate ~reference ctx
      |> Repairs.Candidates.score_all ~scorer !program
    in
    (* bare prompt: code + raw error, nothing else *)
    let prompt =
      Llm_sim.Prompt.make
        ([ (Llm_sim.Prompt.sec_code, Minirust.Pretty.program !program) ]
        @
        match !cur_diags with
        | d :: _ -> [ (Llm_sim.Prompt.sec_error, Miri.Diag.to_string d) ]
        | [] -> (
          match !cur_panic with
          | Some m -> [ (Llm_sim.Prompt.sec_error, "panic: " ^ m) ]
          | None -> []))
    in
    let category =
      match !cur_diags with
      | d :: _ -> d.Miri.Diag.kind
      | [] -> Miri.Diag.Panic_bug
    in
    let task =
      { Llm_sim.Client.category; prompt;
        candidates = Repairs.Candidates.to_llm_candidates candidates;
        kind_bias = [] }
    in
    match
      Llm_sim.Client.choose_repair session.client
        { Llm_sim.Client.temperature = cfg.temperature }
        task
    with
    | None -> ()
    | Some choice ->
      let candidate =
        List.find
          (fun c ->
            c.Repairs.Candidates.id = choice.Llm_sim.Client.chosen.Llm_sim.Client.cand_id)
          candidates
      in
      let edit =
        if choice.Llm_sim.Client.corrupted then
          Repairs.Corrupt.corrupt session.rng !program candidate.Repairs.Candidates.edit
        else candidate.Repairs.Candidates.edit
      in
      (match Minirust.Edit.apply edit !program with
      | Error _ -> ()
      | Ok p' -> program := p');
      let errors, diags, panic = check_errors session.sclock !program inputs in
      cur_errors := errors;
      cur_diags := diags;
      cur_panic := panic;
      n_sequence := errors :: !n_sequence
  in
  let tries = ref 0 in
  while !cur_errors > 0 && !tries < cfg.attempts do
    incr tries;
    attempt ()
  done;
  let verdict = Dataset.Semantic.check ~cache:session.cache case !program in
  List.iter
    (fun _ -> Rb_util.Simclock.charge session.sclock (Rustbrain.Env.verify_cost !program))
    case.Dataset.Case.probes;
  let stats = Llm_sim.Client.stats session.client in
  {
    Rustbrain.Report.case_name = case.Dataset.Case.name;
    category = case.Dataset.Case.category;
    passed = verdict.Dataset.Semantic.passes;
    semantic = verdict.Dataset.Semantic.semantic;
    seconds = Rb_util.Simclock.now session.sclock -. start;
    llm_calls = stats.Llm_sim.Client.calls - calls0;
    tokens = stats.Llm_sim.Client.tokens_in + stats.Llm_sim.Client.tokens_out;
    iterations = !iterations;
    solutions_tried = 1;
    rollbacks = 0;
    n_sequence = List.rev !n_sequence;
    winning_solution = Some "single-shot";
    feedback_hit = false;
    (* baselines talk to a raw, un-faulted client: the fault model targets
       the pipeline under study *)
    retries = 0;
    faults = 0;
    breaker_trips = 0;
    degraded = false;
    gave_up = false;
    trace = [];
  }

let run_campaign cfg cases =
  let session = create_session cfg in
  List.map (repair session) cases

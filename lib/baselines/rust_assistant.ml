type config = {
  model : Llm_sim.Profile.model;
  temperature : float;
  iterations : int;
  seed : int;
}

let default_config =
  { model = Llm_sim.Profile.Gpt4; temperature = 0.5; iterations = 1; seed = 1 }

type session = {
  cfg : config;
  sclock : Rb_util.Simclock.t;
  client : Llm_sim.Client.t;
  rng : Rb_util.Rng.t;
  cache : Miri.Machine.Cache.t;
}

let create_session cfg =
  let sclock = Rb_util.Simclock.create () in
  let client =
    Llm_sim.Client.create ~seed:cfg.seed ~clock:sclock (Llm_sim.Profile.get cfg.model)
  in
  { cfg; sclock; client; rng = Rb_util.Rng.create (cfg.seed * 13 + 11);
    cache = Miri.Machine.Cache.create () }

let clock s = s.sclock
let verification_cache s = s.cache

(* The fixed step order: the same for every error, every time. *)
let fixed_steps =
  [ Rustbrain.Ub_class.C_replace; Rustbrain.Ub_class.C_assert; Rustbrain.Ub_class.C_modify ]

let repair session (case : Dataset.Case.t) : Rustbrain.Report.t =
  (* fixed id origin per repair: keeps reports byte-identical under the
     Domain-parallel scheduler (see Pipeline.repair_common) *)
  Minirust.Ast.scoped_ids @@ fun () ->
  let cfg = session.cfg in
  let start = Rb_util.Simclock.now session.sclock in
  let calls0 = (Llm_sim.Client.stats session.client).Llm_sim.Client.calls in
  let env =
    {
      Rustbrain.Env.clock = session.sclock;
      client = session.client;
      sampling = { Llm_sim.Client.temperature = cfg.temperature };
      kb = None;
      scorer = Dataset.Semantic.score ~cache:session.cache case;
      reference = Some (Dataset.Case.fixed case);
      probes = case.Dataset.Case.probes;
      ref_panics =
        Rustbrain.Env.reference_panics ~cache:session.cache
          ~reference:(Some (Dataset.Case.fixed case))
          ~probes:case.Dataset.Case.probes ();
      rng = session.rng;
      resilient = None;
      runner = None;
    }
  in
  let buggy = Dataset.Case.buggy case in
  let state = Rustbrain.Env.init_state env buggy in
  let pass = ref 0 in
  while state.Rustbrain.Env.errors > 0 && !pass < cfg.iterations do
    incr pass;
    (* every pass runs the full generic step list, no adaptation, no
       rollback: later steps inherit whatever earlier ones produced *)
    List.iter
      (fun cls ->
        if state.Rustbrain.Env.errors > 0 then
          ignore (Rustbrain.Agent.run env state cls))
      fixed_steps
  done;
  let verdict =
    Dataset.Semantic.check ~cache:session.cache case state.Rustbrain.Env.program
  in
  List.iter
    (fun _ ->
      Rb_util.Simclock.charge session.sclock
        (Rustbrain.Env.verify_cost state.Rustbrain.Env.program))
    case.Dataset.Case.probes;
  let stats = Llm_sim.Client.stats session.client in
  {
    Rustbrain.Report.case_name = case.Dataset.Case.name;
    category = case.Dataset.Case.category;
    passed = verdict.Dataset.Semantic.passes;
    semantic = verdict.Dataset.Semantic.semantic;
    seconds = Rb_util.Simclock.now session.sclock -. start;
    llm_calls = stats.Llm_sim.Client.calls - calls0;
    tokens = stats.Llm_sim.Client.tokens_in + stats.Llm_sim.Client.tokens_out;
    iterations = state.Rustbrain.Env.iterations;
    solutions_tried = 1;
    rollbacks = 0;
    n_sequence = List.rev state.Rustbrain.Env.n_sequence;
    winning_solution = Some "fixed-pipeline";
    feedback_hit = false;
    retries = 0;
    faults = 0;
    breaker_trips = 0;
    degraded = false;
    gave_up = false;
    trace = List.rev state.Rustbrain.Env.trace;
  }

let run_campaign cfg cases =
  let session = create_session cfg in
  List.map (repair session) cases

type config = { seed : int; success_rate : float; spread : float }

let default_config = { seed = 1; success_rate = 0.98; spread = 0.25 }

(* Paper Table I, "Human" column (seconds). *)
let median_seconds (k : Miri.Diag.ub_kind) =
  match k with
  | Miri.Diag.Stack_borrow -> 366.0
  | Miri.Diag.Unaligned_pointer -> 222.0
  | Miri.Diag.Validity -> 678.0
  | Miri.Diag.Alloc -> 450.0
  | Miri.Diag.Func_pointer -> 480.0
  | Miri.Diag.Provenance -> 240.0
  | Miri.Diag.Panic_bug -> 336.0
  | Miri.Diag.Func_call -> 1176.0
  | Miri.Diag.Dangling_pointer -> 114.0
  | Miri.Diag.Both_borrow -> 762.0
  | Miri.Diag.Concurrency -> 144.0
  | Miri.Diag.Data_race -> 336.0

type session = {
  cfg : config;
  rng : Rb_util.Rng.t;
  sclock : Rb_util.Simclock.t;
  cache : Miri.Machine.Cache.t;
}

let create_session cfg =
  { cfg; rng = Rb_util.Rng.create (cfg.seed * 97 + 5);
    sclock = Rb_util.Simclock.create ();
    cache = Miri.Machine.Cache.create () }

let verification_cache s = s.cache

let repair session (case : Dataset.Case.t) : Rustbrain.Report.t =
  Minirust.Ast.scoped_ids @@ fun () ->
  let start = Rb_util.Simclock.now session.sclock in
  let median = median_seconds case.Dataset.Case.category in
  let seconds =
    Rb_util.Rng.lognormal session.rng ~mu:(log median) ~sigma:session.cfg.spread
  in
  Rb_util.Simclock.charge session.sclock seconds;
  let succeeds = Rb_util.Rng.bernoulli session.rng session.cfg.success_rate in
  let passed, semantic =
    if succeeds then begin
      let verdict =
        Dataset.Semantic.check ~cache:session.cache case (Dataset.Case.fixed case)
      in
      (verdict.Dataset.Semantic.passes, verdict.Dataset.Semantic.semantic)
    end
    else (false, false)
  in
  {
    Rustbrain.Report.case_name = case.Dataset.Case.name;
    category = case.Dataset.Case.category;
    passed;
    semantic;
    seconds = Rb_util.Simclock.now session.sclock -. start;
    llm_calls = 0;
    tokens = 0;
    iterations = 1;
    solutions_tried = 1;
    rollbacks = 0;
    n_sequence = [];
    winning_solution = Some "human";
    feedback_hit = false;
    retries = 0;
    faults = 0;
    breaker_trips = 0;
    degraded = false;
    gave_up = false;
    trace = [];
  }

let run_campaign cfg cases =
  let session = create_session cfg in
  List.map (repair session) cases

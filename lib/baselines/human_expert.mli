(** Human-expert baseline for Table I.

    No human sits in this container, so the expert is a stochastic model:
    repair time is drawn from a lognormal distribution whose per-category
    median is the paper's measured Human column (the paper's own empirical
    data, reused as workload parameters — see DESIGN.md), scaled by how much
    larger the program is than a typical Miri test. Experts essentially
    always produce the developer fix (configurable success probability,
    default 0.98). *)

type config = {
  seed : int;
  success_rate : float;
  spread : float;  (** lognormal sigma, default 0.25 *)
}

val default_config : config

val median_seconds : Miri.Diag.ub_kind -> float
(** The paper's Table I Human column, per category. *)

type session

val create_session : config -> session

val verification_cache : session -> Miri.Machine.Cache.t
(** Verification memo-cache shared across the session's repairs. *)

val repair : session -> Dataset.Case.t -> Rustbrain.Report.t

val run_campaign : config -> Dataset.Case.t list -> Rustbrain.Report.t list

(** RustAssistant-style fixed-pipeline baseline (Deligiannis et al.).

    A faithful caricature of the fixed process the paper compares against:
    every iteration runs the same generic step sequence — format the error,
    build the prompt, ask for a replace-class fix, then an assert-class fix,
    then a modify-class fix — regardless of the code's features, keeping
    whatever each step produced (no adaptive rollback, no knowledge base, no
    feedback). The generic steps give it overhead on easy cases and no way
    to specialize on hard ones, which is exactly the behaviour Figs. 7 and
    12 contrast RustBrain with. *)

type config = {
  model : Llm_sim.Profile.model;
  temperature : float;
  iterations : int;  (** full pipeline passes, default 2 *)
  seed : int;
}

val default_config : config

type session

val create_session : config -> session

val clock : session -> Rb_util.Simclock.t

val verification_cache : session -> Miri.Machine.Cache.t
(** Verification memo-cache shared across the session's repairs. *)

val repair : session -> Dataset.Case.t -> Rustbrain.Report.t

val run_campaign : config -> Dataset.Case.t list -> Rustbrain.Report.t list

(** "Model alone" baseline: what the paper calls e.g. "GPT-4" without
    RustBrain.

    A minimal loop: dump the code and the raw Miri error into a prompt (no
    feature extraction, no pruned AST, no KB — so low prompt quality), let
    the model pick one repair, apply it, re-check; at most [attempts] tries,
    keeping whatever the last edit produced (no rollback). *)

type config = {
  model : Llm_sim.Profile.model;
  temperature : float;
  attempts : int;  (** default 3 *)
  seed : int;
}

val default_config : config

type session

val create_session : config -> session

val clock : session -> Rb_util.Simclock.t

val verification_cache : session -> Miri.Machine.Cache.t
(** Verification memo-cache shared across the session's repairs. *)

val cost_usd : session -> float
(** Metered dollar cost of the session's LLM calls so far. *)

val repair : session -> Dataset.Case.t -> Rustbrain.Report.t

val run_campaign : config -> Dataset.Case.t list -> Rustbrain.Report.t list

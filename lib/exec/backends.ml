let stats_of_cache cache =
  let s = Miri.Machine.Cache.stats cache in
  { Runner.cache_hits = s.Miri.Machine.Cache.hits;
    cache_misses = s.Miri.Machine.Cache.misses }

module Rustbrain_pipeline = struct
  type config = Rustbrain.Pipeline.config

  let name = "rustbrain"
  let default_config = Rustbrain.Pipeline.default_config
  let with_seed cfg seed = { cfg with Rustbrain.Pipeline.seed }

  let run_campaign cfg cases =
    let session = Rustbrain.Pipeline.create_session cfg in
    let reports = List.map (Rustbrain.Pipeline.repair session) cases in
    (reports, stats_of_cache (Rustbrain.Pipeline.verification_cache session))
end

module Llm_alone = struct
  type config = Baselines.Llm_only.config

  let name = "llm-only"
  let default_config = Baselines.Llm_only.default_config
  let with_seed cfg seed = { cfg with Baselines.Llm_only.seed }

  let run_campaign cfg cases =
    let session = Baselines.Llm_only.create_session cfg in
    let reports = List.map (Baselines.Llm_only.repair session) cases in
    (reports, stats_of_cache (Baselines.Llm_only.verification_cache session))
end

module Fixed_assistant = struct
  type config = Baselines.Rust_assistant.config

  let name = "rust-assistant"
  let default_config = Baselines.Rust_assistant.default_config
  let with_seed cfg seed = { cfg with Baselines.Rust_assistant.seed }

  let run_campaign cfg cases =
    let session = Baselines.Rust_assistant.create_session cfg in
    let reports = List.map (Baselines.Rust_assistant.repair session) cases in
    (reports, stats_of_cache (Baselines.Rust_assistant.verification_cache session))
end

module Human = struct
  type config = Baselines.Human_expert.config

  let name = "human-expert"
  let default_config = Baselines.Human_expert.default_config
  let with_seed cfg seed = { cfg with Baselines.Human_expert.seed }

  let run_campaign cfg cases =
    let session = Baselines.Human_expert.create_session cfg in
    let reports = List.map (Baselines.Human_expert.repair session) cases in
    (reports, stats_of_cache (Baselines.Human_expert.verification_cache session))
end

let rustbrain ?(config = Rustbrain_pipeline.default_config) () =
  Runner.pack (module Rustbrain_pipeline) config

let llm_only ?(config = Llm_alone.default_config) () =
  Runner.pack (module Llm_alone) config

let rust_assistant ?(config = Fixed_assistant.default_config) () =
  Runner.pack (module Fixed_assistant) config

let human_expert ?(config = Human.default_config) () =
  Runner.pack (module Human) config

let all_names = [ "rustbrain"; "llm-only"; "rust-assistant"; "human-expert" ]

let of_name = function
  | "rustbrain" -> Some (rustbrain ())
  | "llm-only" -> Some (llm_only ())
  | "rust-assistant" -> Some (rust_assistant ())
  | "human-expert" -> Some (human_expert ())
  | _ -> None

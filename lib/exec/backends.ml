let stats_of_cache cache =
  let s = Miri.Machine.Cache.stats cache in
  { Runner.cache_hits = s.Miri.Machine.Cache.hits;
    cache_misses = s.Miri.Machine.Cache.misses;
    restarts = 0;
    orphaned_jobs = 0 }

module Rustbrain_pipeline = struct
  type config = Rustbrain.Pipeline.config
  type session = Rustbrain.Pipeline.session

  let name = "rustbrain"
  let default_config = Rustbrain.Pipeline.default_config
  let with_seed cfg seed = { cfg with Rustbrain.Pipeline.seed }
  let seed cfg = cfg.Rustbrain.Pipeline.seed
  let create_session = Rustbrain.Pipeline.create_session
  let repair_case = Rustbrain.Pipeline.repair
  let session_stats s = stats_of_cache (Rustbrain.Pipeline.verification_cache s)
end

module Llm_alone = struct
  type config = Baselines.Llm_only.config
  type session = Baselines.Llm_only.session

  let name = "llm-only"
  let default_config = Baselines.Llm_only.default_config
  let with_seed cfg seed = { cfg with Baselines.Llm_only.seed }
  let seed cfg = cfg.Baselines.Llm_only.seed
  let create_session = Baselines.Llm_only.create_session
  let repair_case = Baselines.Llm_only.repair
  let session_stats s = stats_of_cache (Baselines.Llm_only.verification_cache s)
end

module Fixed_assistant = struct
  type config = Baselines.Rust_assistant.config
  type session = Baselines.Rust_assistant.session

  let name = "rust-assistant"
  let default_config = Baselines.Rust_assistant.default_config
  let with_seed cfg seed = { cfg with Baselines.Rust_assistant.seed }
  let seed cfg = cfg.Baselines.Rust_assistant.seed
  let create_session = Baselines.Rust_assistant.create_session
  let repair_case = Baselines.Rust_assistant.repair
  let session_stats s = stats_of_cache (Baselines.Rust_assistant.verification_cache s)
end

module Human = struct
  type config = Baselines.Human_expert.config
  type session = Baselines.Human_expert.session

  let name = "human-expert"
  let default_config = Baselines.Human_expert.default_config
  let with_seed cfg seed = { cfg with Baselines.Human_expert.seed }
  let seed cfg = cfg.Baselines.Human_expert.seed
  let create_session = Baselines.Human_expert.create_session
  let repair_case = Baselines.Human_expert.repair
  let session_stats s = stats_of_cache (Baselines.Human_expert.verification_cache s)
end

let rustbrain ?(config = Rustbrain_pipeline.default_config) () =
  Runner.pack (module Rustbrain_pipeline) config

let llm_only ?(config = Llm_alone.default_config) () =
  Runner.pack (module Llm_alone) config

let rust_assistant ?(config = Fixed_assistant.default_config) () =
  Runner.pack (module Fixed_assistant) config

let human_expert ?(config = Human.default_config) () =
  Runner.pack (module Human) config

let all_names = [ "rustbrain"; "llm-only"; "rust-assistant"; "human-expert" ]

let of_name = function
  | "rustbrain" -> Some (rustbrain ())
  | "llm-only" -> Some (llm_only ())
  | "rust-assistant" -> Some (rust_assistant ())
  | "human-expert" -> Some (human_expert ())
  | _ -> None

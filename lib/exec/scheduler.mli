(** Domain-parallel campaign scheduler.

    A campaign — one [(backend, config, seed)] triple over a case list — is
    the unit of parallelism: KB and feedback accumulation must stay
    sequential {e within} a session, but distinct campaigns share no state
    (each owns its seeded RNG, simulated clock and verification cache), so
    a fixed pool of OCaml 5 domains can shard them freely.

    Determinism is the contract: results come back in job-list order and
    every report is byte-identical to what a sequential run produces,
    whatever the domain count or work-stealing interleaving. Node-id and
    borrow-tag numbering is domain-local and re-anchored per repair
    ([Minirust.Ast.scoped_ids], [Miri.Borrow.reset_tags]) precisely so this
    holds. *)

type job = {
  label : string;
  runner : Runner.packed;
  cases : Dataset.Case.t list;
}

type failure = {
  exn : string;        (** [Printexc.to_string] of the escaping exception *)
  backtrace : string;  (** raw backtrace captured at the crash site *)
}

type result = {
  job : job;
  reports : Rustbrain.Report.t list;  (** empty when [failure] is set *)
  stats : Runner.stats;
  failure : failure option;
}

type supervision = {
  restarts : int;       (** worker domains the supervisor replaced *)
  orphaned_jobs : int;  (** jobs left unfinished by a dead worker, redone inline *)
}
(** Supervisor activity during one {!run_jobs} call — all zeros on a
    healthy run; chaos and preemption make them visible. *)

val no_supervision : supervision

val default_domain_cap : int
(** Default clamp for {!default_domains} (8): campaigns are verification
    bound and past this width the shared memory bus wins. An explicit
    [--domains]/[?domains] value is always honored, above the cap
    included. *)

val default_domains : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count], clamped to [1, cap] (default
    {!default_domain_cap}). *)

val run_jobs :
  ?domains:int -> ?cancel:(unit -> bool) -> ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.registry -> job list -> result list * supervision
(** Run every job on a pool of at most [domains] workers (default
    {!default_domains}; [domains <= 1] runs inline with no spawning).
    Results are returned in job order and this function never raises on a
    job's behalf: a crashing campaign is isolated as its own [failure]
    (with backtrace) while every sibling job still completes. Worker
    domains that die outside job isolation are restarted by a supervisor
    (bounded), and any job orphaned by a dead worker is finished inline;
    both events are counted in the returned {!supervision}.

    [cancel] is polled (cheaply — it should be an atomic read) before each
    job claim; once it returns [true] no further job starts, and jobs never
    started are recorded as ["cancelled before start"] failures rather than
    run. In-flight jobs are not interrupted here — pair with
    [Runner.guarded] for case-boundary cancellation inside a job.

    [trace]: each job records into a private in-memory buffer installed as
    its worker's ambient sink; after all joins the buffers are folded into
    [trace] in job order (between a ["campaign-start"] header and a
    ["scheduler"] summary event), so the emitted stream is deterministic
    whatever the interleaving. [metrics]: same shape — per-job registries
    installed ambiently and merged into [metrics] at join. *)

val failures : result list -> (job * failure) list
(** Every failed job with its captured failure, in result order. *)

val seeded_jobs :
  ?label:string -> Runner.packed -> seeds:int list -> Dataset.Case.t list ->
  job list
(** One job per seed ([with_seed] applied), labelled ["name/seedN"] — the
    job list {!run_seeded} executes; exposed so callers needing per-job
    failures can run {!run_jobs} themselves. *)

val run_seeded :
  ?domains:int -> ?trace:Obs.Trace.t -> ?metrics:Obs.Metrics.registry ->
  ?label:string -> Runner.packed -> seeds:int list ->
  Dataset.Case.t list -> Rustbrain.Report.t list * Runner.stats
(** One campaign per seed, sharded across domains; reports concatenated in
    seed order with cache stats summed — the shape every bench experiment
    uses. Supervisor activity is folded into the returned stats
    ([restarts]/[orphaned_jobs]). Partial on crash rather than raising: a
    failed seed contributes no reports and is described on stderr. Use
    {!seeded_jobs} + {!run_jobs} to inspect failures programmatically. *)

(** Domain-parallel campaign scheduler.

    A campaign — one [(backend, config, seed)] triple over a case list — is
    the unit of parallelism: KB and feedback accumulation must stay
    sequential {e within} a session, but distinct campaigns share no state
    (each owns its seeded RNG, simulated clock and verification cache), so
    a fixed pool of OCaml 5 domains can shard them freely.

    Determinism is the contract: results come back in job-list order and
    every report is byte-identical to what a sequential run produces,
    whatever the domain count or work-stealing interleaving. Node-id and
    borrow-tag numbering is domain-local and re-anchored per repair
    ([Minirust.Ast.scoped_ids], [Miri.Borrow.reset_tags]) precisely so this
    holds. *)

type job = {
  label : string;
  runner : Runner.packed;
  cases : Dataset.Case.t list;
}

type result = {
  job : job;
  reports : Rustbrain.Report.t list;
  stats : Runner.stats;
}

val default_domains : unit -> int
(** [Domain.recommended_domain_count], clamped to [1, 8]. *)

val run_jobs : ?domains:int -> job list -> result list
(** Run every job on a pool of at most [domains] workers (default
    {!default_domains}; [domains <= 1] runs inline with no spawning).
    Results are returned in job order. If a job raises, the remaining jobs
    still run and the first exception is re-raised afterwards. *)

val run_seeded :
  ?domains:int -> ?label:string -> Runner.packed -> seeds:int list ->
  Dataset.Case.t list -> Rustbrain.Report.t list * Runner.stats
(** One campaign per seed, sharded across domains; reports concatenated in
    seed order with cache stats summed — the shape every bench experiment
    uses. *)

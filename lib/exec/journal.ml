exception Killed

type manifest = {
  version : int;
  fingerprint : string;
  jobs : string list;
  cases : string list;
}

type record = {
  job : string;
  backend : string;
  seed : int;
  case : string;
  cache_hits : int;
  cache_misses : int;
  report : Rustbrain.Report.t;
}

let version = 1

(* -- layout ------------------------------------------------------------ *)

let manifest_path dir = Filename.concat dir "MANIFEST.json"
let rec_name idx = Printf.sprintf "rec-%06d.json" idx
let rec_path dir idx = Filename.concat dir (rec_name idx)
let snap_path dir slot = Filename.concat dir (Printf.sprintf "snap-%03d.bin" slot)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_journal_file f =
  f = "MANIFEST.json" || starts_with "rec-" f || starts_with "snap-" f

(* record segments present on disk, sorted by index *)
let record_files dir =
  (match Sys.readdir dir with
  | files -> Array.to_list files
  | exception Sys_error _ -> [])
  |> List.filter_map (fun f ->
       if starts_with "rec-" f && Filename.check_suffix f ".json" then
         Option.map
           (fun i -> (i, f))
           (int_of_string_opt (String.sub f 4 (String.length f - 9)))
       else None)
  |> List.sort compare

(* -- manifest ---------------------------------------------------------- *)

let render_manifest m =
  Rb_util.Json.(
    to_string
      (Obj
         [ ("version", Num (float_of_int m.version));
           ("fingerprint", Str m.fingerprint);
           ("jobs", List (List.map (fun s -> Str s) m.jobs));
           ("cases", List (List.map (fun s -> Str s) m.cases)) ]))

let parse_manifest s =
  match Rb_util.Json.parse s with
  | Error e -> Error e
  | Ok j ->
    let open Rb_util.Json in
    let strings k =
      match Option.bind (member k j) to_list with
      | None -> None
      | Some xs ->
        List.fold_right
          (fun x acc ->
            match (to_str x, acc) with
            | Some s, Some a -> Some (s :: a)
            | _ -> None)
          xs (Some [])
    in
    (match
       ( Option.bind (member "version" j) to_int,
         Option.bind (member "fingerprint" j) to_str,
         strings "jobs",
         strings "cases" )
     with
    | Some v, _, _, _ when v <> version ->
      Error (Printf.sprintf "unsupported journal version %d" v)
    | Some v, Some fingerprint, Some jobs, Some cases ->
      Ok { version = v; fingerprint; jobs; cases }
    | _ -> Error "missing manifest field")

(* -- records ----------------------------------------------------------- *)

(* The report is spliced in verbatim from [Report.to_json]; the embedded
   [idx] ties the segment to its filename so a renamed or shuffled file
   cannot masquerade as a valid prefix member. *)
let render_record ~idx (r : record) =
  Printf.sprintf
    {|{"idx":%d,"job":%s,"backend":%s,"seed":%d,"case":%s,"cache_hits":%d,"cache_misses":%d,"report":%s}|}
    idx (Rb_util.Json.escape r.job)
    (Rb_util.Json.escape r.backend)
    r.seed
    (Rb_util.Json.escape r.case)
    r.cache_hits r.cache_misses
    (Rustbrain.Report.to_json r.report)

let parse_record s =
  match Rb_util.Json.parse s with
  | Error e -> Error e
  | Ok j ->
    let open Rb_util.Json in
    let str k = Option.bind (member k j) to_str in
    let int k = Option.bind (member k j) to_int in
    (match
       ( int "idx", str "job", str "backend", int "seed", str "case",
         int "cache_hits", int "cache_misses", member "report" j )
     with
    | ( Some idx, Some job, Some backend, Some seed, Some case,
        Some cache_hits, Some cache_misses, Some rep ) -> (
      match Rustbrain.Report.of_json (to_string rep) with
      | Ok report ->
        Ok (idx, { job; backend; seed; case; cache_hits; cache_misses; report })
      | Error e -> Error e)
    | _ -> Error "missing record field")

(* -- snapshots --------------------------------------------------------- *)

(* One header line — magic, cases covered, payload digest — then raw
   marshaled session bytes. The count lets {!Checkpoint} detect a snapshot
   that outran the surviving records (crash between the two writes of an
   append, or a hand-truncated tail) and fall back to recomputing the job. *)
let render_snapshot ~count payload =
  Printf.sprintf "RBSNAP1 %d %s\n%s" count
    (Digest.to_hex (Digest.string payload))
    payload

let read_snapshot dir slot =
  match Rb_util.Fsfile.read (snap_path dir slot) with
  | None -> None
  | Some s -> (
    match String.index_opt s '\n' with
    | None -> None
    | Some nl -> (
      let header = String.sub s 0 nl in
      let payload = String.sub s (nl + 1) (String.length s - nl - 1) in
      match String.split_on_char ' ' header with
      | [ "RBSNAP1"; count; digest ]
        when Digest.to_hex (Digest.string payload) = digest ->
        Option.map (fun c -> (c, payload)) (int_of_string_opt count)
      | _ -> None))

(* -- loading ----------------------------------------------------------- *)

type loaded = {
  manifest : manifest;
  records : record list;
  snapshots : (string * (int * string)) list;
  dropped : int;
}

let exists ~dir = Sys.file_exists (manifest_path dir)

let load ~dir =
  match Rb_util.Fsfile.read (manifest_path dir) with
  | None -> Error (Printf.sprintf "journal: no manifest in %s" dir)
  | Some s -> (
    match parse_manifest s with
    | Error e -> Error ("journal: bad manifest: " ^ e)
    | Ok manifest ->
      (* the valid prefix is contiguous from 0 with matching embedded
         indices; the first gap, unreadable or unparseable segment starts
         the dropped tail *)
      let rec take expected = function
        | [] -> ([], 0)
        | (i, f) :: rest when i = expected -> (
          match
            Option.map parse_record (Rb_util.Fsfile.read (Filename.concat dir f))
          with
          | Some (Ok (idx, r)) when idx = i ->
            let tail, dropped = take (expected + 1) rest in
            (r :: tail, dropped)
          | _ -> ([], 1 + List.length rest))
        | remaining -> ([], List.length remaining)
      in
      let records, dropped = take 0 (record_files dir) in
      let snapshots =
        List.mapi (fun slot label -> (slot, label)) manifest.jobs
        |> List.filter_map (fun (slot, label) ->
             Option.map (fun snap -> (label, snap)) (read_snapshot dir slot))
      in
      Ok { manifest; records; snapshots; dropped })

let wipe ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if is_journal_file f then
          Rb_util.Fsfile.remove_if_exists (Filename.concat dir f))
      (Sys.readdir dir)

(* -- writer ------------------------------------------------------------ *)

type t = {
  dir : string;
  manifest : manifest;
  slots : (string, int) Hashtbl.t;     (* job label -> snapshot slot *)
  counts : (string, int) Hashtbl.t;    (* job label -> records journaled *)
  mutex : Mutex.t;
  mutable next_idx : int;
  mutable kill_budget : int option;
  mutable dead : bool;
}

let make_writer ~dir manifest ~next_idx ~counts =
  let slots = Hashtbl.create 8 in
  List.iteri (fun slot label -> Hashtbl.replace slots label slot) manifest.jobs;
  { dir; manifest; slots; counts; mutex = Mutex.create (); next_idx;
    kill_budget = None; dead = false }

let create ~dir manifest =
  Rb_util.Fsfile.mkdir_p dir;
  wipe ~dir;
  Rb_util.Fsfile.write_atomic (manifest_path dir) (render_manifest manifest);
  make_writer ~dir manifest ~next_idx:0 ~counts:(Hashtbl.create 8)

let attach ~dir =
  match load ~dir with
  | Error _ as e -> e
  | Ok l ->
    let valid = List.length l.records in
    (* clear the corrupt tail so fresh appends land on clean indices *)
    List.iter
      (fun (i, f) ->
        if i >= valid then Rb_util.Fsfile.remove_if_exists (Filename.concat dir f))
      (record_files dir);
    let counts = Hashtbl.create 8 in
    List.iter
      (fun r ->
        Hashtbl.replace counts r.job
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts r.job)))
      l.records;
    Ok (make_writer ~dir l.manifest ~next_idx:valid ~counts)

let manifest_of t = t.manifest

let kill_after t n =
  Mutex.protect t.mutex (fun () -> t.kill_budget <- Some n)

let append t record ~snapshot =
  Mutex.protect t.mutex (fun () ->
      if t.dead then raise Killed;
      (match t.kill_budget with
      | Some 0 ->
        t.dead <- true;
        raise Killed
      | Some n -> t.kill_budget <- Some (n - 1)
      | None -> ());
      let idx = t.next_idx in
      Rb_util.Fsfile.write_atomic (rec_path t.dir idx)
        (render_record ~idx record);
      t.next_idx <- idx + 1;
      let count =
        1 + Option.value ~default:0 (Hashtbl.find_opt t.counts record.job)
      in
      Hashtbl.replace t.counts record.job count;
      (* [count] is per-job, so the attrs are the same whatever order the
         domains interleaved their appends — unlike the global [idx] *)
      Obs.Metrics.inc "journal.appends";
      Obs.Trace.note "journal-append" (fun () ->
          [ ("job", Obs.Trace.S record.job);
            ("case", Obs.Trace.S record.case);
            ("count", Obs.Trace.I count) ]);
      match Hashtbl.find_opt t.slots record.job with
      | Some slot ->
        Rb_util.Fsfile.write_atomic (snap_path t.dir slot)
          (render_snapshot ~count snapshot);
        Obs.Metrics.inc "journal.snapshots";
        Obs.Trace.note "journal-snapshot" (fun () ->
            [ ("job", Obs.Trace.S record.job);
              ("count", Obs.Trace.I count) ])
      | None -> ())

(** The unified campaign-runner API.

    The pipeline and every baseline expose the same repair-campaign shape —
    build a session from a config, repair each case in order, return one
    {!Rustbrain.Report.t} per case — but historically through three
    incompatible [run_campaign] entry points that bench and the CLI each
    re-wrapped by hand. {!S} names that shape once; a backend is a
    first-class module implementing it, and {!packed} pairs the module with
    a concrete config so heterogeneous backends can ride in one list, one
    scheduler queue, one CLI flag.

    Campaign state (simulated clock, LLM client, KB/feedback, verification
    cache) lives inside the backend's session, created fresh per
    [run_campaign] call: a packed runner is therefore safe to run on any
    domain, and running it twice gives byte-identical reports. *)

type stats = {
  cache_hits : int;    (** verification memo-cache hits *)
  cache_misses : int;
}

val no_stats : stats
val add_stats : stats -> stats -> stats

val hit_rate : stats -> float
(** Hits over total lookups; 0 when the campaign never consulted a cache. *)

module type S = sig
  type config

  val name : string
  (** Stable backend identifier ("rustbrain", "llm-only", ...). *)

  val default_config : config

  val with_seed : config -> int -> config
  (** The one config field every backend shares; lets generic drivers fan a
      campaign out across seeds without knowing the config's shape. *)

  val run_campaign : config -> Dataset.Case.t list -> Rustbrain.Report.t list * stats
  (** Fresh session, repair each case in order, report verification-cache
      traffic. Deterministic: equal configs and cases give byte-identical
      reports. *)
end

type packed = Packed : (module S with type config = 'c) * 'c -> packed
(** A backend together with the config it will run; the existential keeps
    per-backend config types out of generic driver code. *)

val pack : (module S with type config = 'c) -> 'c -> packed

val name : packed -> string
val with_seed : packed -> int -> packed
val run : packed -> Dataset.Case.t list -> Rustbrain.Report.t list * stats

(** The unified campaign-runner API.

    The pipeline and every baseline expose the same repair-campaign shape —
    build a session from a config, repair each case in order, return one
    {!Rustbrain.Report.t} per case — but historically through three
    incompatible [run_campaign] entry points that bench and the CLI each
    re-wrapped by hand. {!S} names that shape once; a backend is a
    first-class module implementing it, and {!packed} pairs the module with
    a concrete config so heterogeneous backends can ride in one list, one
    scheduler queue, one CLI flag.

    Since the durability layer, {!S} exposes the campaign at *case*
    granularity: a session is created once, then stepped one repair at a
    time. That is what lets the write-ahead journal record every completed
    (job, case) pair as it lands, and lets {!Checkpoint} snapshot the
    session between cases and fast-forward a resumed campaign past the work
    a killed process already finished.

    Campaign state (simulated clock, LLM client, KB/feedback, verification
    cache) lives inside the backend's session, created fresh per campaign: a
    packed runner is therefore safe to run on any domain, and running it
    twice gives byte-identical reports. *)

type stats = {
  cache_hits : int;    (** verification memo-cache hits *)
  cache_misses : int;
  restarts : int;      (** supervisor-replaced worker domains (scheduler) *)
  orphaned_jobs : int; (** jobs a dead worker left behind, finished inline *)
}

val no_stats : stats
val add_stats : stats -> stats -> stats

val hit_rate : stats -> float
(** Hits over total lookups; 0 when the campaign never consulted a cache. *)

module type S = sig
  type config

  type session
  (** All mutable campaign state. Must be a marshalable value (closures
      allowed — snapshots never cross binaries; the campaign fingerprint's
      code-version component rejects them first). *)

  val name : string
  (** Stable backend identifier ("rustbrain", "llm-only", ...). *)

  val default_config : config

  val with_seed : config -> int -> config
  (** The one config field every backend shares; lets generic drivers fan a
      campaign out across seeds without knowing the config's shape. *)

  val seed : config -> int
  (** Read the seed back (journal records carry it). *)

  val create_session : config -> session

  val repair_case : session -> Dataset.Case.t -> Rustbrain.Report.t
  (** One repair; session state (KB, feedback, RNG streams, clock)
      accumulates across calls, in case order. *)

  val session_stats : session -> stats
  (** Cumulative verification-cache traffic so far. *)
end

type packed = Packed : (module S with type config = 'c) * 'c -> packed
(** A backend together with the config it will run; the existential keeps
    per-backend config types out of generic driver code. *)

val pack : (module S with type config = 'c) -> 'c -> packed

val name : packed -> string
val seed : packed -> int
val with_seed : packed -> int -> packed

val fingerprint : packed -> string
(** Hex digest of the backend name and its exact config value; equal
    configs give equal fingerprints within one build of the code. The
    journal manifest combines these with the case list and the code version
    to decide whether a journal may be resumed. *)

val run : packed -> Dataset.Case.t list -> Rustbrain.Report.t list * stats
(** Fresh session, repair each case in order, report verification-cache
    traffic. Deterministic: equal configs and cases give byte-identical
    reports. *)

(** {2 Stepped execution}

    A campaign in flight: the packed module together with its live session.
    This is the granularity the journal and the chaos harness work at. *)

type running =
  | Running :
      (module S with type config = 'c and type session = 's) * 's
      -> running

val start : packed -> running
val step : running -> Dataset.Case.t -> Rustbrain.Report.t
val running_stats : running -> stats

val snapshot : running -> string
(** Marshal the session (with closures; same-binary only — see {!S}). *)

val restore : packed -> string -> running
(** Rebuild a {!running} campaign from {!snapshot} bytes. The caller must
    guarantee the bytes were produced by the same packed backend in the
    same binary (the journal fingerprint enforces this); feeding foreign
    bytes is undefined. *)

val instrumented :
  packed ->
  restore:string option ->
  observe:
    (Dataset.Case.t -> Rustbrain.Report.t -> stats -> snapshot:string -> unit) ->
  packed
(** A runner that behaves exactly like [packed] except that (1) its session
    starts from the marshaled [restore] bytes when given (same contract as
    {!restore}), and (2) after every repaired case it calls [observe] with
    the report, the cumulative session stats and a fresh session snapshot —
    the hook {!Checkpoint} uses to journal each case as it completes. An
    exception from [observe] propagates out of the repair (this is how the
    chaos harness simulates a crash mid-campaign). *)

exception Aborted of string
(** Raised by watchdog-guarded runners (see {!guarded}) to stop a campaign
    at a case boundary; the scheduler's crash isolation records it as the
    job's failure, leaving already-journaled cases intact. *)

val guarded : packed -> before:(Dataset.Case.t -> unit) -> packed
(** A runner that behaves exactly like [packed] except that [before] runs
    ahead of every case repair. A [before] that raises (conventionally
    {!Aborted}) cancels the job at the case boundary — the cooperative
    half of the serve layer's runner watchdog: a runner that is slow
    *between* cases is stopped cleanly here; only one hung *inside* a case
    must be abandoned wholesale. *)

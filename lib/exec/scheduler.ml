type job = {
  label : string;
  runner : Runner.packed;
  cases : Dataset.Case.t list;
}

type failure = { exn : string; backtrace : string }

type result = {
  job : job;
  reports : Rustbrain.Report.t list;
  stats : Runner.stats;
  failure : failure option;
}

type supervision = { restarts : int; orphaned_jobs : int }

let no_supervision = { restarts = 0; orphaned_jobs = 0 }

let default_domain_cap = 8

let default_domains ?(cap = default_domain_cap) () =
  max 1 (min cap (Domain.recommended_domain_count ()))

let run_jobs ?(domains = default_domains ()) ?(cancel = fun () -> false) ?trace
    ?metrics jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results = Array.make n None in
  (* One private trace buffer / metrics registry per job: workers record
     with zero cross-domain contention, and the caller's sink/registry is
     fed once after every join, in job order — so the folded trace is
     byte-identical whatever the domain interleaving was. *)
  let job_traces =
    match trace with
    | None -> [||]
    | Some _ -> Array.init n (fun _ -> Obs.Trace.memory ())
  in
  let job_metrics =
    match metrics with
    | None -> [||]
    | Some _ -> Array.init n (fun _ -> Obs.Metrics.create ())
  in
  (* Per-job crash isolation: an exception escaping a campaign is captured
     with its backtrace as that job's outcome — it can never poison the
     pool or erase sibling results. *)
  let exec_job i =
    let job = jobs.(i) in
    match Runner.run job.runner job.cases with
    | reports, stats -> results.(i) <- Some { job; reports; stats; failure = None }
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      results.(i) <-
        Some
          { job; reports = []; stats = Runner.no_stats;
            failure =
              Some
                { exn = Printexc.to_string e;
                  backtrace = Printexc.raw_backtrace_to_string bt } }
  in
  let exec i =
    let body () =
      if Array.length job_metrics = 0 then exec_job i
      else Obs.Metrics.with_registry job_metrics.(i) (fun () -> exec_job i)
    in
    if Array.length job_traces = 0 then body ()
    else begin
      let tr, _ = job_traces.(i) in
      Obs.Trace.with_ambient tr (fun () ->
          Obs.Trace.event tr
            ~attrs:
              [ ("job", Obs.Trace.S jobs.(i).label);
                ("cases", Obs.Trace.I (List.length jobs.(i).cases)) ]
            "job-start";
          body ();
          match results.(i) with
          | Some { failure = Some f; _ } ->
            Obs.Trace.event tr
              ~attrs:
                [ ("job", Obs.Trace.S jobs.(i).label);
                  ("exn", Obs.Trace.S f.exn) ]
              "job-crash"
          | Some { reports; _ } ->
            Obs.Trace.event tr
              ~attrs:
                [ ("job", Obs.Trace.S jobs.(i).label);
                  ("reports", Obs.Trace.I (List.length reports)) ]
              "job-end"
          | None -> ())
    end
  in
  let workers = min domains n in
  let restarted = ref 0 in
  if workers <= 1 then
    for i = 0 to n - 1 do
      if not (cancel ()) then exec i
    done
  else begin
    (* fixed worker pool over an atomic job queue: campaigns are
       independent, so claiming indices is the only synchronization needed,
       and each result slot is written by exactly one worker (publication
       ordered by Domain.join) *)
    let next = Atomic.make 0 in
    let rec worker () =
      if not (cancel ()) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          exec i;
          worker ()
        end
      end
    in
    (* Supervisor: [exec] never raises, but a domain can still die outside
       it (Out_of_memory in queue bookkeeping, a signal). While work
       remains, a dead worker is replaced — bounded so a worker that dies
       instantly on every job cannot respawn forever. *)
    let restarts = ref (2 * workers) in
    let rec supervise = function
      | [] -> ()
      | d :: rest -> (
        match Domain.join d with
        | () -> supervise rest
        | exception _ when !restarts > 0 && Atomic.get next < n ->
          decr restarts;
          incr restarted;
          (* prepend, not append: joining order is irrelevant and the
             append re-walked the whole list on every respawn *)
          supervise (Domain.spawn worker :: rest)
        | exception _ -> supervise rest)
    in
    supervise (List.init workers (fun _ -> Domain.spawn worker))
  end;
  (* a job claimed by a dead worker may have been left without an outcome:
     finish those inline so every job reports exactly once, in order. Under
     a cancel the unrun jobs are recorded as cancelled failures instead —
     a watchdog that fired must not be answered by running more work. *)
  let orphaned = ref 0 in
  Array.iteri
    (fun i r ->
      if r = None then
        if cancel () then
          results.(i) <-
            Some
              { job = jobs.(i); reports = []; stats = Runner.no_stats;
                failure =
                  Some { exn = "cancelled before start"; backtrace = "" } }
        else begin
          incr orphaned;
          exec i
        end)
    results;
  (match trace with
  | None -> ()
  | Some sink ->
    Obs.Trace.event sink
      ~attrs:[ ("jobs", Obs.Trace.I n); ("workers", Obs.Trace.I workers) ]
      "campaign-start";
    Array.iter
      (fun (_, recorded) -> List.iter (Obs.Trace.emit sink) (recorded ()))
      job_traces;
    Obs.Trace.event sink
      ~attrs:
        [ ("restarts", Obs.Trace.I !restarted);
          ("orphaned", Obs.Trace.I !orphaned) ]
      "scheduler");
  (match metrics with
  | None -> ()
  | Some into ->
    Array.iter (fun reg -> Obs.Metrics.merge_into ~into reg) job_metrics);
  ( Array.to_list results
    |> List.map (function Some r -> r | None -> assert false),
    { restarts = !restarted; orphaned_jobs = !orphaned } )

let failures results =
  List.filter_map
    (fun r -> match r.failure with Some f -> Some (r.job, f) | None -> None)
    results

let seeded_jobs ?label runner ~seeds cases =
  let label_of seed =
    match label with
    | Some l -> Printf.sprintf "%s/seed%d" l seed
    | None -> Printf.sprintf "%s/seed%d" (Runner.name runner) seed
  in
  List.map
    (fun seed ->
      { label = label_of seed; runner = Runner.with_seed runner seed; cases })
    seeds

let run_seeded ?domains ?trace ?metrics ?label runner ~seeds cases =
  let results, sup =
    run_jobs ?domains ?trace ?metrics (seeded_jobs ?label runner ~seeds cases)
  in
  List.iter
    (fun (job, f) ->
      Printf.eprintf "scheduler: job %s crashed: %s\n%s%!" job.label f.exn
        f.backtrace)
    (failures results);
  let stats =
    List.fold_left (fun acc r -> Runner.add_stats acc r.stats) Runner.no_stats results
  in
  ( List.concat_map (fun r -> r.reports) results,
    { stats with
      Runner.restarts = stats.Runner.restarts + sup.restarts;
      orphaned_jobs = stats.Runner.orphaned_jobs + sup.orphaned_jobs } )

type job = {
  label : string;
  runner : Runner.packed;
  cases : Dataset.Case.t list;
}

type result = {
  job : job;
  reports : Rustbrain.Report.t list;
  stats : Runner.stats;
}

let default_domains () = max 1 (min 8 (Domain.recommended_domain_count ()))

let run_jobs ?(domains = default_domains ()) jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results = Array.make n None in
  let exec i =
    let job = jobs.(i) in
    match Runner.run job.runner job.cases with
    | reports, stats -> results.(i) <- Some (Ok { job; reports; stats })
    | exception e -> results.(i) <- Some (Error e)
  in
  let workers = min domains n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      exec i
    done
  else begin
    (* fixed worker pool over an atomic job queue: campaigns are
       independent, so claiming indices is the only synchronization needed,
       and each result slot is written by exactly one worker (publication
       ordered by Domain.join) *)
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        exec i;
        worker ()
      end
    in
    let pool = List.init workers (fun _ -> Domain.spawn worker) in
    List.iter Domain.join pool
  end;
  Array.to_list results
  |> List.map (function
       | Some (Ok r) -> r
       | Some (Error e) -> raise e
       | None -> assert false)

let run_seeded ?domains ?label runner ~seeds cases =
  let label_of seed =
    match label with
    | Some l -> Printf.sprintf "%s/seed%d" l seed
    | None -> Printf.sprintf "%s/seed%d" (Runner.name runner) seed
  in
  let jobs =
    List.map
      (fun seed ->
        { label = label_of seed; runner = Runner.with_seed runner seed; cases })
      seeds
  in
  let results = run_jobs ?domains jobs in
  ( List.concat_map (fun r -> r.reports) results,
    List.fold_left (fun acc r -> Runner.add_stats acc r.stats) Runner.no_stats results )

type stats = {
  cache_hits : int;
  cache_misses : int;
  restarts : int;
  orphaned_jobs : int;
}

let no_stats = { cache_hits = 0; cache_misses = 0; restarts = 0; orphaned_jobs = 0 }

let add_stats a b =
  { cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    restarts = a.restarts + b.restarts;
    orphaned_jobs = a.orphaned_jobs + b.orphaned_jobs }

let hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int total

module type S = sig
  type config
  type session

  val name : string
  val default_config : config
  val with_seed : config -> int -> config
  val seed : config -> int
  val create_session : config -> session
  val repair_case : session -> Dataset.Case.t -> Rustbrain.Report.t
  val session_stats : session -> stats
end

type packed = Packed : (module S with type config = 'c) * 'c -> packed

let pack (type c) (m : (module S with type config = c)) (cfg : c) = Packed (m, cfg)

let name (Packed ((module M), _)) = M.name

let seed (Packed ((module M), cfg)) = M.seed cfg

let with_seed (Packed ((module M), cfg)) seed = Packed ((module M), M.with_seed cfg seed)

(* Configs are plain data (model tags, floats, flags), so their marshaled
   bytes are a stable function of the value within one build — exactly the
   scope a resumable journal is valid for. [Closures] is defensive: a
   config that does carry a closure still fingerprints, and the code-version
   component of the manifest keeps it honest across builds. *)
let fingerprint (Packed ((module M), cfg)) =
  Digest.to_hex
    (Digest.string (M.name ^ "\x00" ^ Marshal.to_string cfg [ Marshal.Closures ]))

type running =
  | Running :
      (module S with type config = 'c and type session = 's) * 's
      -> running

let start (Packed ((module M), cfg)) = Running ((module M), M.create_session cfg)

let step (Running ((module M), session)) case = M.repair_case session case

let running_stats (Running ((module M), session)) = M.session_stats session

let snapshot (Running ((module M), session)) =
  Marshal.to_string session [ Marshal.Closures ]

let restore (Packed ((module M), _)) bytes =
  Running ((module M), (Marshal.from_string bytes 0 : M.session))

let instrumented (Packed ((module M), cfg)) ~restore ~observe =
  let module W = struct
    type config = M.config
    type session = M.session

    let name = M.name
    let default_config = M.default_config
    let with_seed = M.with_seed
    let seed = M.seed

    let create_session cfg =
      match restore with
      | Some bytes -> (Marshal.from_string bytes 0 : M.session)
      | None -> M.create_session cfg

    let repair_case s case =
      let report = M.repair_case s case in
      observe case report (M.session_stats s)
        ~snapshot:(Marshal.to_string s [ Marshal.Closures ]);
      report

    let session_stats = M.session_stats
  end in
  Packed ((module W), cfg)

exception Aborted of string

let guarded (Packed ((module M), cfg)) ~before =
  let module W = struct
    type config = M.config
    type session = M.session

    let name = M.name
    let default_config = M.default_config
    let with_seed = M.with_seed
    let seed = M.seed
    let create_session = M.create_session

    let repair_case s case =
      before case;
      M.repair_case s case

    let session_stats = M.session_stats
  end in
  Packed ((module W), cfg)

let run packed cases =
  let running = start packed in
  let reports = List.map (step running) cases in
  (reports, running_stats running)

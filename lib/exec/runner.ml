type stats = { cache_hits : int; cache_misses : int }

let no_stats = { cache_hits = 0; cache_misses = 0 }

let add_stats a b =
  { cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses }

let hit_rate s =
  let total = s.cache_hits + s.cache_misses in
  if total = 0 then 0.0 else float_of_int s.cache_hits /. float_of_int total

module type S = sig
  type config

  val name : string
  val default_config : config
  val with_seed : config -> int -> config
  val run_campaign : config -> Dataset.Case.t list -> Rustbrain.Report.t list * stats
end

type packed = Packed : (module S with type config = 'c) * 'c -> packed

let pack (type c) (m : (module S with type config = c)) (cfg : c) = Packed (m, cfg)

let name (Packed ((module M), _)) = M.name

let with_seed (Packed ((module M), cfg)) seed = Packed ((module M), M.with_seed cfg seed)

let run (Packed ((module M), cfg)) cases = M.run_campaign cfg cases

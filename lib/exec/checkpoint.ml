type mode = Fresh | Resume

exception Fingerprint_mismatch of { expected : string; found : string }

type outcome = {
  results : Scheduler.result list;
  supervision : Scheduler.supervision;
  replayed : int;
  recomputed : int;
  dropped : int;
}

(* Snapshots marshal closures, so they are only meaningful inside the
   binary that wrote them; digesting the executable makes a rebuilt binary
   a different campaign. Memoized under a mutex, not [lazy]: the serve
   runner slots call [run] from several domains at once, and concurrent
   [Lazy.force] of one shared suspension raises [CamlinternalLazy.Undefined]
   in every domain that loses the race. *)
let code_version_mx = Mutex.create ()
let code_version_memo = ref None

let code_version () =
  Mutex.protect code_version_mx (fun () ->
      match !code_version_memo with
      | Some v -> v
      | None ->
        let v =
          match Digest.file Sys.executable_name with
          | d -> Digest.to_hex d
          | exception _ -> "unknown-binary"
        in
        code_version_memo := Some v;
        v)

let fingerprint (jobs : Scheduler.job list) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (code_version ());
  List.iter
    (fun (j : Scheduler.job) ->
      Buffer.add_string buf "\x00job\x00";
      Buffer.add_string buf j.label;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf (Runner.fingerprint j.runner);
      Buffer.add_char buf '\x00';
      Buffer.add_string buf (string_of_int (Runner.seed j.runner));
      List.iter
        (fun (c : Dataset.Case.t) ->
          Buffer.add_char buf '\x00';
          Buffer.add_string buf c.Dataset.Case.name)
        j.cases)
    jobs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function
  | _ :: rest when n > 0 -> drop (n - 1) rest
  | l -> l

(* Per-job resume plan: what to replay, what to run, how to journal it. *)
type plan = {
  original : Scheduler.job;
  sched_job : Scheduler.job;          (* instrumented runner, remainder cases *)
  prefix : Rustbrain.Report.t list;   (* replayed from the journal *)
  planned_recompute : int;
}

let plan_job journal ~records ~snapshots (job : Scheduler.job) =
  let completed =
    List.filter (fun (r : Journal.record) -> r.Journal.job = job.label) records
  in
  let names = List.map (fun (c : Dataset.Case.t) -> c.Dataset.Case.name) job.cases in
  let n_done = List.length completed in
  let total = List.length names in
  (* the journaled cases must be exactly the head of this job's case list —
     guaranteed by the fingerprint, but a hand-edited journal must degrade
     to a recompute, never to misattributed reports *)
  let prefix_ok =
    n_done <= total
    && List.for_all2
         (fun (r : Journal.record) n -> r.Journal.case = n)
         completed (take n_done names)
  in
  let snapshot_bytes =
    if not (prefix_ok && n_done > 0 && n_done < total) then None
    else
      match List.assoc_opt job.label snapshots with
      | Some (count, bytes) when count = n_done -> Some bytes
      | _ -> None
  in
  let fully_replayed = prefix_ok && n_done = total in
  let resume_here = fully_replayed || snapshot_bytes <> None in
  let prefix, remainder, skip =
    if resume_here then
      (List.map (fun (r : Journal.record) -> r.Journal.report) completed,
       drop n_done job.cases, [])
    else
      (* snapshot unusable (or foreign records): recompute the whole job
         from a fresh session; cases already journaled are re-run — their
         reports are identical by determinism — but not re-appended *)
      ([], job.cases, if prefix_ok then take n_done names else names)
  in
  let backend = Runner.name job.runner in
  let seed = Runner.seed job.runner in
  (* mutated only by the one domain running this job *)
  let to_skip = ref skip in
  let observe (case : Dataset.Case.t) report (stats : Runner.stats) ~snapshot =
    match !to_skip with
    | n :: rest when n = case.Dataset.Case.name -> to_skip := rest
    | _ ->
      Journal.append journal
        { Journal.job = job.label; backend; seed;
          case = case.Dataset.Case.name;
          cache_hits = stats.Runner.cache_hits;
          cache_misses = stats.Runner.cache_misses;
          report }
        ~snapshot
  in
  let runner = Runner.instrumented job.runner ~restore:snapshot_bytes ~observe in
  { original = job;
    sched_job = { job with Scheduler.runner; cases = remainder };
    prefix;
    planned_recompute = List.length remainder }

let run ?domains ?cancel ?trace ?metrics ?kill_after ~dir ~mode
    (jobs : Scheduler.job list) =
  let fp = fingerprint jobs in
  let manifest =
    { Journal.version = Journal.version;
      fingerprint = fp;
      jobs = List.map (fun (j : Scheduler.job) -> j.Scheduler.label) jobs;
      cases =
        (match jobs with
        | [] -> []
        | j :: _ ->
          List.map (fun (c : Dataset.Case.t) -> c.Dataset.Case.name) j.cases) }
  in
  let journal, prior =
    match mode with
    | Fresh -> (Journal.create ~dir manifest, None)
    | Resume when not (Journal.exists ~dir) -> (Journal.create ~dir manifest, None)
    | Resume -> (
      match Journal.load ~dir with
      | Error e -> failwith e
      | Ok loaded ->
        if loaded.Journal.manifest.Journal.fingerprint <> fp then
          raise
            (Fingerprint_mismatch
               { expected = fp;
                 found = loaded.Journal.manifest.Journal.fingerprint });
        (match Journal.attach ~dir with
        | Error e -> failwith e
        | Ok t -> (t, Some loaded)))
  in
  Option.iter (Journal.kill_after journal) kill_after;
  let records = match prior with Some l -> l.Journal.records | None -> [] in
  let snapshots = match prior with Some l -> l.Journal.snapshots | None -> [] in
  let dropped = match prior with Some l -> l.Journal.dropped | None -> 0 in
  let plans = List.map (plan_job journal ~records ~snapshots) jobs in
  let replayed = List.fold_left (fun n p -> n + List.length p.prefix) 0 plans in
  let planned = List.fold_left (fun n p -> n + p.planned_recompute) 0 plans in
  (* the recovery decision is per-campaign state settled before any domain
     runs, so it is emitted straight to the caller's sink, ahead of the
     folded per-job streams *)
  (match trace with
  | None -> ()
  | Some sink ->
    Obs.Trace.event sink
      ~attrs:
        [ ("mode", Obs.Trace.S (match mode with Fresh -> "fresh" | Resume -> "resume"));
          ("replayed", Obs.Trace.I replayed);
          ("recompute", Obs.Trace.I planned);
          ("dropped", Obs.Trace.I dropped) ]
      "checkpoint");
  (match metrics with
  | None -> ()
  | Some reg ->
    Obs.Metrics.(incr ~by:replayed (counter reg "checkpoint.replayed"));
    Obs.Metrics.(incr ~by:planned (counter reg "checkpoint.recomputed"));
    Obs.Metrics.(incr ~by:dropped (counter reg "checkpoint.dropped")));
  let results, supervision =
    Scheduler.run_jobs ?domains ?cancel ?trace ?metrics
      (List.map (fun p -> p.sched_job) plans)
  in
  let results =
    List.map2
      (fun p (r : Scheduler.result) ->
        { r with Scheduler.job = p.original; reports = p.prefix @ r.reports })
      plans results
  in
  { results;
    supervision;
    replayed;
    recomputed = planned;
    dropped }

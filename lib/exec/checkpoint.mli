(** Checkpoint/resume orchestration over the write-ahead {!Journal}.

    {!run} executes a {!Scheduler} job list under a journal directory.
    On a fresh start it records the campaign {!fingerprint} in the
    manifest and journals every completed case; on resume it replays the
    journaled reports, restores each job's session snapshot, and re-runs
    only the remainder — the stitched report list is byte-identical (as
    rendered by [Report.to_json]/[csv_row]) to the uninterrupted run, for
    any kill point at a record boundary and any domain count.

    The fingerprint digests the code version (executable digest), every
    job's label, its runner fingerprint (backend name + config), its seed
    and its case-name list. Anything that could change a report changes
    the fingerprint, and a journal whose manifest disagrees is refused
    ({!Fingerprint_mismatch}) rather than silently replayed into a lying
    result.

    Recovery is conservative where the journal is imperfect: a snapshot
    that is missing, digest-corrupt, or out of step with the surviving
    records for its job (e.g. after a truncated tail) costs a recompute
    of that whole job from a fresh session — already-journaled cases are
    re-run without being re-appended, so determinism keeps the journal
    and the reports consistent. *)

type mode =
  | Fresh   (** discard any existing journal and start over *)
  | Resume  (** replay an existing journal; start fresh when none exists *)

exception Fingerprint_mismatch of { expected : string; found : string }
(** The journal on disk belongs to a different campaign (or a different
    build). [expected] is this run's fingerprint, [found] the manifest's. *)

type outcome = {
  results : Scheduler.result list;
      (** job order, replayed prefix stitched before recomputed reports *)
  supervision : Scheduler.supervision;
  replayed : int;    (** reports taken from the journal, not re-run *)
  recomputed : int;  (** cases scheduled for (re-)execution this run *)
  dropped : int;     (** corrupt tail records the journal loader discarded *)
}

val fingerprint : Scheduler.job list -> string
(** The campaign fingerprint {!run} will stamp into (and demand from) the
    journal manifest. *)

val run :
  ?domains:int ->
  ?cancel:(unit -> bool) ->
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.registry ->
  ?kill_after:int ->
  dir:string ->
  mode:mode ->
  Scheduler.job list ->
  outcome
(** Execute the jobs journaled under [dir]. [cancel] is the scheduler's
    cooperative stop (see [Scheduler.run_jobs]) — under a watchdog abort
    the journal keeps every case already appended, so a later [Resume]
    continues from the same frontier. [kill_after n] arms the chaos
    self-abort: the journal persists [n] more records, then every job dies
    with [Journal.Killed] (isolated per job by the scheduler — inspect
    [Scheduler.failures], discard the results, and {!run} again with
    [mode = Resume] to recover). Raises {!Fingerprint_mismatch} on a
    foreign journal and [Failure] on an unreadable one. *)

(** The four campaign backends adapted to {!Runner.S}.

    [Rustbrain_pipeline] is the paper's full system; [Llm_alone] the
    "model alone" baseline; [Fixed_assistant] the RustAssistant-style fixed
    pipeline; [Human] the stochastic human-expert time model. The
    constructors below pack each with a config (default when omitted) for
    generic drivers; {!of_name} resolves the CLI/bench spelling. *)

module Rustbrain_pipeline :
  Runner.S
    with type config = Rustbrain.Pipeline.config
     and type session = Rustbrain.Pipeline.session

module Llm_alone :
  Runner.S
    with type config = Baselines.Llm_only.config
     and type session = Baselines.Llm_only.session

module Fixed_assistant :
  Runner.S
    with type config = Baselines.Rust_assistant.config
     and type session = Baselines.Rust_assistant.session

module Human :
  Runner.S
    with type config = Baselines.Human_expert.config
     and type session = Baselines.Human_expert.session

val rustbrain : ?config:Rustbrain.Pipeline.config -> unit -> Runner.packed
val llm_only : ?config:Baselines.Llm_only.config -> unit -> Runner.packed
val rust_assistant : ?config:Baselines.Rust_assistant.config -> unit -> Runner.packed
val human_expert : ?config:Baselines.Human_expert.config -> unit -> Runner.packed

val all_names : string list

val of_name : string -> Runner.packed option
(** Default-config backend by name: "rustbrain", "llm-only",
    "rust-assistant", "human-expert". *)

(** The one campaign-options record every driver shares.

    [fix], [corpus-fix], [campaign], [serve] and the load driver used to
    each re-plumb the same flags (seed, domain count, fault injection,
    retries, deadline, journal/resume/fresh, trace, metrics, out) through
    their own argument lists; the serve wire protocol would have made a
    fourth copy. This record is the single source of truth: the CLI builds
    one value from one shared Cmdliner term, the server parses the same
    shape off the wire ({!of_wire_json}) and persists it in the durable
    accepted-jobs store, and helpers here centralize the derived pieces
    (backend resolution, pipeline config, journal-mode policy) that were
    previously duplicated per subcommand. *)

type t = {
  seeds : int list;       (** one campaign per seed; never empty *)
  domains : int option;   (** worker-domain pool; [None] = recommended *)
  fault_rate : float;     (** injected LLM-API fault rate in [0,1] *)
  retries : int;          (** retries per faulted call *)
  deadline_ms : int;      (** per-repair watchdog, 0 = unlimited *)
  journal : string option;(** write-ahead journal directory *)
  resume : bool;
  fresh : bool;
  trace : string option;  (** JSONL trace output file *)
  metrics : bool;         (** print the metrics registry after the run *)
  out : string option;    (** report file (JSONL/CSV), written atomically *)
  kb_dir : string option;
      (** persistent knowledge-base store directory ({!Knowledge.Segment});
          local plumbing like [journal]/[out] — it never travels on the
          client wire (the server chooses its own store), only
          server-to-worker. *)
  kb_readonly : bool;     (** open [kb_dir] snapshot-only, no writer lock *)
}

val default : t

val seed : t -> int
(** First seed — for drivers that run exactly one campaign. *)

val deadline : t -> float option
(** [deadline_ms] as the simulated-seconds watchdog budget. *)

val resilience_overridden : t -> bool
(** Any of fault-rate / retries / deadline differs from {!default}. *)

val validate : t -> (t, string) result
(** Range-check the numeric fields (seeds non-empty, fault rate in [0,1],
    non-negative retries/deadline, positive domain count). *)

val pipeline_config :
  ?base:Rustbrain.Pipeline.config -> t -> Rustbrain.Pipeline.config
(** [base] (default [Pipeline.default_config]) with this record's
    fault-rate / retries / deadline applied. Seeds are applied per job by
    the scheduler's [with_seed], not here. *)

val runner : t -> backend:string -> (Runner.packed, string) result
(** Resolve a backend name to a packed runner with these options applied.
    Resilience flags are refused on non-rustbrain backends (their clients
    are deliberately un-faulted oracles). *)

val journal_mode : t -> ((string * Checkpoint.mode) option, string) result
(** The journal policy previously open-coded in the CLI: [Ok None] = run
    unjournaled; [Ok (Some (dir, mode))] = run under {!Checkpoint};
    [Error] = refuse (an existing journal is never overwritten unless
    [fresh], and [resume]/[fresh] require a directory and exclude each
    other). *)

(** {2 Wire / durable subset}

    Only the job-shaping fields travel: seeds, domains, fault_rate,
    retries, deadline_ms. Local plumbing (journal/trace/metrics/out) stays
    local — a remote client must not point the server at files. The round
    trip rebuilds a value whose runner config marshals byte-identically,
    so a restarted server resumes a stored job under the same campaign
    fingerprint. *)

val to_wire_json : t -> Rb_util.Json.t

val of_wire_json : Rb_util.Json.t -> (t, string) result
(** Missing fields take {!default}s; mistyped fields are an [Error], as is
    a value {!validate} rejects. Never raises. *)

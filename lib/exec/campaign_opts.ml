type t = {
  seeds : int list;
  domains : int option;
  fault_rate : float;
  retries : int;
  deadline_ms : int;
  journal : string option;
  resume : bool;
  fresh : bool;
  trace : string option;
  metrics : bool;
  out : string option;
  kb_dir : string option;
  kb_readonly : bool;
}

let default =
  { seeds = [ 1 ];
    domains = None;
    fault_rate = 0.0;
    retries = 3;
    deadline_ms = 0;
    journal = None;
    resume = false;
    fresh = false;
    trace = None;
    metrics = false;
    out = None;
    kb_dir = None;
    kb_readonly = false }

let seed t = match t.seeds with s :: _ -> s | [] -> 1

let deadline t =
  if t.deadline_ms > 0 then Some (float_of_int t.deadline_ms /. 1000.0) else None

let resilience_overridden t =
  t.fault_rate > 0.0 || t.retries <> default.retries || t.deadline_ms > 0

let validate t =
  if t.seeds = [] then Error "at least one seed is required"
  else if t.fault_rate < 0.0 || t.fault_rate > 1.0 then
    Error "fault rate must lie in [0,1]"
  else if t.retries < 0 then Error "retries must be non-negative"
  else if t.deadline_ms < 0 then Error "deadline must be non-negative"
  else if (match t.domains with Some d -> d < 1 | None -> false) then
    Error "domain count must be at least 1"
  else if t.kb_readonly && t.kb_dir = None then
    Error "--kb-readonly requires --kb-dir DIR"
  else Ok t

let pipeline_config ?(base = Rustbrain.Pipeline.default_config) t =
  { base with
    Rustbrain.Pipeline.fault_rate = t.fault_rate;
    max_retries = t.retries;
    deadline = deadline t;
    kb_dir = t.kb_dir;
    kb_readonly = t.kb_readonly }

(* The fault model targets the pipeline under study; baselines keep their
   raw oracle clients, so resilience flags on a baseline are a user error,
   not a silent no-op. *)
let runner t ~backend =
  if backend = Backends.Rustbrain_pipeline.name then
    Ok (Backends.rustbrain ~config:(pipeline_config t) ())
  else
    match Backends.of_name backend with
    | None ->
      Error
        (Printf.sprintf "unknown backend %S (known: %s)" backend
           (String.concat ", " Backends.all_names))
    | Some _ when resilience_overridden t ->
      Error
        "--fault-rate/--retries/--deadline-ms only apply to the rustbrain \
         backend"
    | Some _ when t.kb_dir <> None ->
      Error "--kb-dir only applies to the rustbrain backend"
    | Some r -> Ok r

(* Decide what to do with the journal directory, if any: [Ok None] = run
   unjournaled, [Ok (Some (dir, mode))] = run under Checkpoint, [Error] =
   refuse. An existing journal is never overwritten implicitly. *)
let journal_mode t =
  match t.journal with
  | None ->
    if t.resume || t.fresh then Error "--resume/--fresh require --journal DIR"
    else Ok None
  | Some dir ->
    if t.resume && t.fresh then Error "pass at most one of --resume and --fresh"
    else if Journal.exists ~dir && not (t.resume || t.fresh) then
      Error
        (Printf.sprintf
           "journal %s already exists; pass --resume to continue it or --fresh \
            to discard it" dir)
    else Ok (Some (dir, if t.fresh then Checkpoint.Fresh else Checkpoint.Resume))

(* -- wire/durable subset ------------------------------------------------ *)

(* Only the fields that shape a repair job travel over the wire or into the
   serve store: seeds, domains, fault_rate, retries, deadline_ms. The rest
   (journal/trace/metrics/out) are local-process plumbing — a remote client
   has no business pointing the server at files. The codec is total both
   ways and rebuilds a value that produces a byte-identical runner config,
   which is what lets a restarted server resume a stored job under the same
   campaign fingerprint. *)

let to_wire_json t =
  Rb_util.Json.Obj
    (List.concat
       [ [ ("seeds", Rb_util.Json.List
              (List.map (fun s -> Rb_util.Json.Num (float_of_int s)) t.seeds)) ];
         (match t.domains with
         | None -> []
         | Some d -> [ ("domains", Rb_util.Json.Num (float_of_int d)) ]);
         [ ("fault_rate", Rb_util.Json.Num t.fault_rate);
           ("retries", Rb_util.Json.Num (float_of_int t.retries));
           ("deadline_ms", Rb_util.Json.Num (float_of_int t.deadline_ms)) ] ])

let of_wire_json json =
  let open Rb_util.Json in
  let ( let* ) r f = Result.bind r f in
  let int_field name fallback =
    match member name json with
    | None -> Ok fallback
    | Some v -> (
      match to_int v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "opts field %S mistyped" name))
  in
  let* seeds =
    match member "seeds" json with
    | None -> Ok default.seeds
    | Some v -> (
      match Option.map (List.map to_int) (to_list v) with
      | Some ints when not (List.mem None ints) && ints <> [] ->
        Ok (List.filter_map Fun.id ints)
      | _ -> Error "opts field \"seeds\" must be a non-empty integer list")
  in
  let* domains =
    match member "domains" json with
    | None -> Ok None
    | Some v -> (
      match to_int v with
      | Some d -> Ok (Some d)
      | None -> Error "opts field \"domains\" mistyped")
  in
  let* fault_rate =
    match member "fault_rate" json with
    | None -> Ok default.fault_rate
    | Some v -> (
      match to_float v with
      | Some f -> Ok f
      | None -> Error "opts field \"fault_rate\" mistyped")
  in
  let* retries = int_field "retries" default.retries in
  let* deadline_ms = int_field "deadline_ms" default.deadline_ms in
  validate { default with seeds; domains; fault_rate; retries; deadline_ms }

(** Write-ahead journal for crash-safe campaigns.

    A campaign run owns a journal directory. Before any work starts, a
    {!manifest} — version, campaign fingerprint, job labels, case names —
    is written atomically; every completed (job, case) repair is then
    appended as its own record segment ([rec-%06d.json], one JSON object
    per file, written tmp → fsync → rename) together with a fresh session
    snapshot for that job ([snap-%03d.bin]). One append is one durable
    unit: a process killed at any record boundary leaves a journal whose
    records and snapshots agree exactly, so a resume replays the journaled
    reports and recomputes nothing that was already verified.

    A crash {e inside} an append can at worst leave a stale temporary file
    (ignored) or a snapshot one case ahead of the records (detected by the
    per-snapshot case count and discarded, costing a recompute of that job
    — never a wrong report). {!load} treats any unparseable or
    out-of-sequence record as the start of a corrupt tail: the tail is
    dropped and counted, not fatal.

    The writer is mutex-serialized so domain-parallel jobs can append
    concurrently; {!kill_after} arms a deterministic self-abort used by
    the chaos harness to kill the run at a chosen record boundary. *)

exception Killed
(** Raised by {!append} once an armed {!kill_after} budget is exhausted —
    the simulated crash. Once raised, every later append on the same
    writer raises again (the "process" is dead). *)

type manifest = {
  version : int;        (** journal format version ({!version}) *)
  fingerprint : string; (** campaign fingerprint — see {!Checkpoint} *)
  jobs : string list;   (** job labels, scheduler order *)
  cases : string list;  (** case names, campaign order *)
}

type record = {
  job : string;      (** job label (manifest member) *)
  backend : string;  (** runner name, for human inspection *)
  seed : int;
  case : string;     (** case name *)
  cache_hits : int;  (** session cache stats after this case *)
  cache_misses : int;
  report : Rustbrain.Report.t;
}

type t
(** A serialized journal writer. *)

val version : int

val exists : dir:string -> bool
(** A manifest is present in [dir]. *)

val create : dir:string -> manifest -> t
(** Start a fresh journal: create [dir] if needed, remove any previous
    records/snapshots, durably write the manifest. *)

val attach : dir:string -> (t, string) result
(** Open an existing journal for appending. Record numbering continues
    after the last valid record; a corrupt tail is deleted so new appends
    never collide with garbage. [Error] when no valid manifest exists. *)

val manifest_of : t -> manifest

val kill_after : t -> int -> unit
(** [kill_after t n] lets [n] more appends complete, then makes the next
    one raise {!Killed} without persisting anything — a deterministic
    crash at a record boundary. *)

val append : t -> record -> snapshot:string -> unit
(** Durably persist one completed case: the record segment first, then
    the owning job's session snapshot (atomic overwrite, digest-guarded,
    tagged with that job's record count). Thread-safe. Raises {!Killed}
    when armed by {!kill_after}; any other I/O failure propagates. *)

type loaded = {
  manifest : manifest;
  records : record list;  (** valid prefix, journal (append) order *)
  snapshots : (string * (int * string)) list;
      (** job label → (cases covered, marshaled session bytes); absent or
          digest-invalid snapshots are omitted *)
  dropped : int;  (** corrupt/out-of-sequence tail records discarded *)
}

val load : dir:string -> (loaded, string) result
(** Read everything {!append} made durable. Never raises on corrupt
    content: bad records end the valid prefix ([dropped] counts the
    rest), bad snapshots are omitted. [Error] only when the manifest
    itself is missing or unreadable. *)

val wipe : dir:string -> unit
(** Remove manifest, records and snapshots (for [--fresh]). The directory
    itself is kept. *)

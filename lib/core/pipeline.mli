(** The RustBrain pipeline: detection (F1), fast thinking (F2), slow-thinking
    multi-agent execution (S1–S2), and feedback/self-learning (S3).

    A {!session} carries the state shared across a repair campaign — the
    simulated clock, the LLM client, the optional knowledge base, and the
    feedback store — so that repairs of similar errors get cheaper over a
    run, exactly as the paper's Table I "red sections" describe.

    Every configuration toggle the paper ablates is here: per-agent
    enablement and order (Fig. 7), knowledge base (Figs. 8/9, Table I),
    feedback, rollback policy (Fig. 5), model and temperature (Figs. 8–11),
    solution and iteration budgets. *)

type config = {
  model : Llm_sim.Profile.model;
  temperature : float;
  use_kb : bool;
  use_feedback : bool;
  use_cache : bool;
      (** memoize oracle verification runs (semantically transparent; see
          {!Miri.Machine.Cache}) *)
  rollback : Slow_think.rollback_policy;
  enable_replace : bool;
  enable_assert : bool;
  enable_modify : bool;
  enable_abstract : bool;
  max_solutions : int;  (** fast-thinking solutions to try (paper: up to 10) *)
  max_iters : int;      (** slow-thinking agent attempts per solution *)
  seed : int;
  fault_rate : float;
      (** total injected LLM-API fault rate in [0,1], spread uniformly over
          timeout / rate-limit / 5xx / truncated / malformed; [0.] leaves the
          client a perfect oracle and every report byte-identical to a
          pre-resilience run *)
  max_retries : int;        (** retries per faulted call before degrading *)
  deadline : float option;  (** per-repair simulated-seconds watchdog budget *)
  kb_dir : string option;
      (** persistent knowledge base: a {!Knowledge.Segment} store shared
          across campaigns and serve tenants. The session opens a frozen
          snapshot (deterministic retrieval regardless of concurrent
          appends) and, when writable, appends what S3 learns for future
          sessions. [None] (the default) keeps the historical in-memory,
          seed-only KB. *)
  kb_readonly : bool;
      (** open [kb_dir] without the single-writer lock: queries work,
          learned entries are dropped. Required when many worker processes
          share one store. *)
}

val default_config : config
(** GPT-4, temperature 0.5, all agents, adaptive rollback, KB and feedback
    on, 3 solutions x 6 iterations, seed 1, no faults. *)

type session

val create_session : config -> session

val clock : session -> Rb_util.Simclock.t
val config : session -> config
val llm_stats : session -> Llm_sim.Client.stats

val resilience : session -> Llm_sim.Resilient.t
(** The session's retry/breaker wrapper (cumulative stats; reports carry
    per-repair deltas). *)

val verification_cache : session -> Miri.Machine.Cache.t
(** The session's verification memo-cache (hit/miss counters feed the
    bench perf report; disabled when [config.use_cache] is false). *)

val repair : session -> Dataset.Case.t -> Report.t
(** Run the full pipeline on one case. *)

val repair_with_solution : session -> Dataset.Case.t -> Solution.t -> Report.t
(** Force a single externally-supplied solution plan (used by the Fig. 7
    flexibility experiment, which enumerates explicit agent orders). *)

val run_campaign : config -> Dataset.Case.t list -> Report.t list
(** Fresh session, repair each case in order. *)

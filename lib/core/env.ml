(* Shared execution environment and mutable attempt state threaded through
   fast thinking, the slow-thinking agents and the feedback mechanism.

   Cost model: LLM calls charge the simulated clock inside Llm_sim.Client;
   every *verification* run RustBrain performs (re-checking a candidate
   program with the Miri substrate) charges [verify_cost]; knowledge-base
   queries charge inside Knowledge.Kb. The oracle scoring that stands in
   for the model's internal knowledge (see DESIGN.md) is deliberately free:
   it is simulation machinery, not pipeline work. *)

type t = {
  clock : Rb_util.Simclock.t;
  client : Llm_sim.Client.t;
  sampling : Llm_sim.Client.sampling;
  kb : Knowledge.Kb.t option;
  scorer : Minirust.Ast.program -> float;
  reference : Minirust.Ast.program option;
  probes : int64 array list;
  ref_panics : bool list;
      (** per probe: does the reference itself panic? A candidate panic on
          such a probe is a defined refusal, not an error to fix *)
  rng : Rb_util.Rng.t;  (* corruption and tie-breaking *)
  resilient : Llm_sim.Resilient.t option;
      (** when set, LLM calls go through the retry/breaker wrapper (see
          {!choose_repair} etc.); [None] talks to the raw client, which is
          what every pre-resilience call path did *)
  runner :
    (Minirust.Ast.program -> Minirust.Typecheck.info -> Miri.Machine.config ->
     Miri.Machine.run_result)
      option;
      (** substitute for [Miri.Machine.run] in {!check}: lets the pipeline
          memoize collect-mode verification of programs whose results are
          known to be reproducible (e.g. the canonical buggy parse). [None]
          runs the machine directly. *)
}

(* Reference panic profile for an env under construction. *)
let reference_panics ?cache ~reference ~probes () =
  match reference with
  | None -> List.map (fun _ -> false) probes
  | Some reference ->
    let fingerprint =
      match cache with
      | Some c when Miri.Machine.Cache.enabled c ->
        Some (Minirust.Pretty.program reference)
      | _ -> None
    in
    List.map
      (fun inputs ->
        let config =
          { Miri.Machine.default_config with
            Miri.Machine.mode = Miri.Machine.Stop_first; seed = 42;
            max_steps = 200_000; inputs; trace = false }
        in
        let s = Miri.Machine.analyze_summary ?cache ?fingerprint ~config reference in
        s.Miri.Machine.sm_panic <> None)
      probes

type state = {
  mutable program : Minirust.Ast.program;
  mutable errors : int;                    (* collect-mode error count *)
  mutable diags : Miri.Diag.t list;        (* diagnostics of the last check *)
  mutable panicked : string option;
  mutable history : (Minirust.Ast.program * int) list;  (* snapshots for rollback *)
  mutable n_sequence : int list;           (* reversed error-count sequence *)
  mutable trace : string list;             (* reversed step log *)
  mutable prompt_extras : (string * string) list;
  mutable kind_bias : (string * float) list;
  mutable iterations : int;
}

let verify_cost program =
  (* simulated seconds per Miri run: startup plus per-statement interpretation *)
  0.8 +. (0.01 *. float_of_int (Minirust.Visit.count_stmts program))

(* Collect-mode check of the current program across every probe input:
   updates the aggregate error count, keeps the diagnostics of the first
   failing probe, charges the clock once per probe, and appends to the N
   sequence. *)
let check env state =
  let probes = match env.probes with [] -> [ [||] ] | ps -> ps in
  (match Minirust.Typecheck.check state.program with
  | Error errors ->
    Rb_util.Simclock.charge env.clock (verify_cost state.program);
    state.errors <- List.length errors;
    state.diags <- [];
    state.panicked <- None
  | Ok info ->
    let total = ref 0 in
    let first_diags = ref [] in
    let first_panic = ref None in
    let ref_panics =
      if List.length env.ref_panics = List.length probes then env.ref_panics
      else List.map (fun _ -> false) probes
    in
    List.iter2
      (fun inputs ref_panics_here ->
        Rb_util.Simclock.charge env.clock (verify_cost state.program);
        let config =
          { Miri.Machine.default_config with
            Miri.Machine.mode = Miri.Machine.Collect 25; seed = 42;
            max_steps = 200_000; inputs; trace = false }
        in
        let r =
          match env.runner with
          | Some f -> f state.program info config
          | None -> Miri.Machine.run ~config state.program info
        in
        total := !total + List.length r.Miri.Machine.diags;
        (match r.Miri.Machine.outcome with
        | Miri.Machine.Panicked m ->
          (* a panic is an error to repair only where the reference runs on *)
          if not ref_panics_here then begin
            total := !total + 1;
            if !first_panic = None then first_panic := Some m
          end
        | Miri.Machine.Resource_limit _ ->
          (* exhausted allocation fuel is unconditionally an error: no
             reference blows the (generous) budgets *)
          total := !total + 1
        | _ -> ());
        if !first_diags = [] then first_diags := r.Miri.Machine.diags)
      probes ref_panics;
    state.errors <- !total;
    state.diags <- !first_diags;
    state.panicked <- !first_panic);
  state.n_sequence <- state.errors :: state.n_sequence;
  state.errors

let init_state env program =
  let state =
    { program; errors = 0; diags = []; panicked = None; history = [];
      n_sequence = []; trace = []; prompt_extras = []; kind_bias = [];
      iterations = 0 }
  in
  let errors = check env state in
  state.history <- [ (program, errors) ];
  state

let log state msg = state.trace <- msg :: state.trace

let snapshot state = state.history <- (state.program, state.errors) :: state.history

let best_snapshot state =
  List.fold_left
    (fun (bp, be) (p, e) -> if e < be then (p, e) else (bp, be))
    (state.program, state.errors)
    state.history

(* LLM dispatch: agents call the model through these so a single [resilient]
   field decides whether calls are guarded (retry/backoff/breaker) or raw. *)

let choose_repair env sampling task =
  match env.resilient with
  | Some r -> Llm_sim.Resilient.choose_repair r sampling task
  | None -> Llm_sim.Client.choose_repair env.client sampling task

let complete env sampling prompt =
  match env.resilient with
  | Some r -> Llm_sim.Resilient.complete r sampling prompt
  | None -> Llm_sim.Client.complete env.client sampling prompt

let charge_prompt env prompt =
  match env.resilient with
  | Some r -> Llm_sim.Resilient.charge_prompt r prompt
  | None -> Llm_sim.Client.charge_prompt env.client prompt

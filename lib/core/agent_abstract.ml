type outcome = { sketch_kept : int; sketch_dropped : int; kb_hits : int }

let set_extra (state : Env.state) name body =
  state.Env.prompt_extras <-
    (name, body) :: List.remove_assoc name state.Env.prompt_extras

let run (env : Env.t) (state : Env.state) : outcome =
  let sketch = Knowledge.Prune.prune state.Env.program state.Env.diags in
  set_extra state Llm_sim.Prompt.sec_pruned_ast (Knowledge.Prune.render sketch);
  (* the sketch extraction itself is an LLM pass in the paper (it replaces
     syn); charge one completion over the sketch *)
  let sketch_prompt =
    Llm_sim.Prompt.make [ (Llm_sim.Prompt.sec_code, Knowledge.Prune.render sketch) ]
  in
  Env.charge_prompt env sketch_prompt;
  let kb_hits =
    match env.Env.kb with
    | None -> 0
    | Some kb ->
      let kind =
        match state.Env.diags with
        | d :: _ -> Some d.Miri.Diag.kind
        | [] -> None
      in
      let vec = Knowledge.Featvec.of_sketch sketch kind in
      let hits = Knowledge.Kb.query kb vec in
      if hits <> [] then begin
        set_extra state Llm_sim.Prompt.sec_kb_hints (Knowledge.Kb.hints_text hits);
        let bias = Knowledge.Kb.kind_bias hits in
        state.Env.kind_bias <-
          List.fold_left
            (fun acc (k, v) ->
              let cur = Option.value (List.assoc_opt k acc) ~default:0.0 in
              (k, max cur v) :: List.remove_assoc k acc)
            state.Env.kind_bias bias
      end;
      List.length hits
  in
  Env.log state
    (Printf.sprintf "abstract reasoning: pruned AST %d kept / %d dropped, %d KB hit(s)"
       (List.length sketch.Knowledge.Prune.kept_stmts)
       sketch.Knowledge.Prune.dropped kb_hits);
  { sketch_kept = List.length sketch.Knowledge.Prune.kept_stmts;
    sketch_dropped = sketch.Knowledge.Prune.dropped;
    kb_hits }

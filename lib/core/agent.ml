type outcome =
  | Already_clean
  | No_candidates
  | Applied of { label : string; corrupted : bool; errors_after : int }
  | Edit_failed of string

let outcome_to_string = function
  | Already_clean -> "already clean"
  | No_candidates -> "no candidates"
  | Applied { label; corrupted; errors_after } ->
    Printf.sprintf "applied%s `%s` -> %d error(s)"
      (if corrupted then " [hallucinated]" else "")
      label errors_after
  | Edit_failed msg -> "edit failed: " ^ msg

let build_prompt (env : Env.t) (state : Env.state) =
  let sections =
    [ (Llm_sim.Prompt.sec_code, Minirust.Pretty.program state.Env.program) ]
    @ (match state.Env.diags with
      | d :: _ -> [ (Llm_sim.Prompt.sec_error, Miri.Diag.to_string d) ]
      | [] -> (
        match state.Env.panicked with
        | Some m -> [ (Llm_sim.Prompt.sec_error, "panic: " ^ m) ]
        | None -> []))
    @ List.rev state.Env.prompt_extras
  in
  ignore env;
  Llm_sim.Prompt.make sections

let category_of_state (state : Env.state) : Miri.Diag.ub_kind =
  match state.Env.diags with
  | d :: _ -> d.Miri.Diag.kind
  | [] -> Miri.Diag.Panic_bug

let run (env : Env.t) (state : Env.state) (cls : Ub_class.repair_class) : outcome =
  if state.Env.errors = 0 then Already_clean
  else begin
    state.Env.iterations <- state.Env.iterations + 1;
    let ctx =
      { Repairs.Rule.program = state.Env.program;
        diag = (match state.Env.diags with d :: _ -> Some d | [] -> None);
        panicked = state.Env.panicked }
    in
    let kind = Ub_class.to_fix_kind cls in
    let all = Repairs.Candidates.enumerate ?reference:env.Env.reference ctx in
    let mine = List.filter (fun c -> c.Repairs.Candidates.kind = kind) all in
    match mine with
    | [] -> No_candidates
    | mine ->
      let scored =
        Repairs.Candidates.score_all ~scorer:env.Env.scorer state.Env.program mine
      in
      let task =
        { Llm_sim.Client.category = category_of_state state;
          prompt = build_prompt env state;
          candidates = Repairs.Candidates.to_llm_candidates scored;
          kind_bias = state.Env.kind_bias }
      in
      (match Env.choose_repair env env.Env.sampling task with
      | None -> No_candidates
      | Some choice ->
        let candidate =
          List.find
            (fun c -> c.Repairs.Candidates.id = choice.Llm_sim.Client.chosen.Llm_sim.Client.cand_id)
            scored
        in
        let edit =
          if choice.Llm_sim.Client.corrupted then
            Repairs.Corrupt.corrupt env.Env.rng state.Env.program
              candidate.Repairs.Candidates.edit
          else candidate.Repairs.Candidates.edit
        in
        (match Minirust.Edit.apply edit state.Env.program with
        | Error msg ->
          (* a failed application still costs an iteration and is visible to
             the error sequence as "no progress" *)
          state.Env.n_sequence <- state.Env.errors :: state.Env.n_sequence;
          Env.log state ("edit failed: " ^ msg);
          Edit_failed msg
        | Ok program' ->
          state.Env.program <- program';
          let errors_after = Env.check env state in
          Env.snapshot state;
          let label = edit.Minirust.Edit.label in
          Env.log state
            (Printf.sprintf "[%s] %s -> %d error(s)" (Ub_class.repair_class_name cls)
               label errors_after);
          Applied { label; corrupted = choice.Llm_sim.Client.corrupted; errors_after }))
  end

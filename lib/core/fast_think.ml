type generation = {
  solutions : Solution.t list;
  feedback_hit : (float * Feedback.memory) option;
}

(* Diverse plan shapes over a class priority [c1; c2; c3]. *)
let base_plans ~abstract_enabled priority =
  let open Solution in
  let fix c = Fix c in
  let with_abstract steps = if abstract_enabled then Abstract :: steps else steps in
  match priority with
  | c1 :: c2 :: c3 :: _ ->
    [ { sname = "primary-focus"; steps = [ fix c1; fix c1; fix c2 ]; origin = "fast-thinking" };
      { sname = "priority-sweep"; steps = [ fix c1; fix c2; fix c3 ]; origin = "fast-thinking" };
      { sname = "deep-primary";
        steps = with_abstract [ fix c1; fix c1; fix c1 ];
        origin = "fast-thinking" };
      { sname = "expert-guided";
        steps = with_abstract [ fix c1; fix c2; fix c1 ];
        origin = "fast-thinking" };
      { sname = "secondary-first"; steps = [ fix c2; fix c1; fix c3 ]; origin = "fast-thinking" };
      { sname = "broad-then-deep";
        steps = with_abstract [ fix c3; fix c2; fix c1; fix c1 ];
        origin = "fast-thinking" } ]
  | _ ->
    [ { sname = "fallback";
        steps = with_abstract [ fix Ub_class.C_modify; fix Ub_class.C_replace ];
        origin = "fast-thinking" } ]

let generate (env : Env.t) ~program ~(features : Features.t) ~feedback ~abstract_enabled
    ~count =
  (* the fast-thinking LLM pass over the extracted features *)
  let prompt =
    Llm_sim.Prompt.make
      [ (Llm_sim.Prompt.sec_features, Features.to_prompt_section features) ]
  in
  ignore (Env.complete env env.Env.sampling prompt);
  let hit =
    match feedback with
    | None -> None
    | Some fb -> Feedback.recall fb (Features.vector program features)
  in
  let plans = base_plans ~abstract_enabled features.Features.repair_priority in
  let take n l = List.filteri (fun i _ -> i < n) l in
  match hit with
  | Some (score, memory) ->
    (* self-learning shortcut: lead with the recalled plan, shrink the search *)
    let recalled =
      { memory.Feedback.plan with Solution.origin = "feedback"; sname = "recalled" }
    in
    { solutions = recalled :: take (max 0 (min 1 (count - 1))) plans;
      feedback_hit = Some (score, memory) }
  | None -> { solutions = take (max 1 count) plans; feedback_hit = None }

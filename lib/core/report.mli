(** Per-case repair report: everything the evaluation harness aggregates. *)

type t = {
  case_name : string;
  category : Miri.Diag.ub_kind;
  passed : bool;          (** paper's *pass*: UB-free on all probes *)
  semantic : bool;        (** paper's *exec*: behaviour matches the reference *)
  seconds : float;        (** simulated repair wall time *)
  llm_calls : int;
  tokens : int;           (** prompt + completion tokens *)
  iterations : int;       (** total agent attempts across solutions *)
  solutions_tried : int;
  rollbacks : int;
  n_sequence : int list;  (** error counts of the winning solution *)
  winning_solution : string option;
  feedback_hit : bool;
  retries : int;       (** LLM calls retried after an injected fault *)
  faults : int;        (** injected API faults observed during this repair *)
  breaker_trips : int; (** circuit-breaker Closed->Open transitions *)
  degraded : bool;     (** the repair used the fallback path / lost a call / hit its deadline *)
  gave_up : bool;      (** resilience gave up at least one call and the case failed *)
  trace : string list;
}

val summary_line : t -> string

val codec_version : int
(** Schema version stamped into every rendered report as its ["v"] field.
    The journal's record segments, [--out] JSONL files and the serve wire
    protocol all carry reports through this one codec; {!of_json} accepts
    a line with no ["v"] as version 1 (journals written before the field
    existed) and refuses any other version rather than misreading it. *)

val to_json : t -> string
(** One self-contained JSON object per report (no trailing newline),
    leading with ["v"]:{!codec_version}; campaign output is a JSON array
    or one object per line. *)

val of_json : string -> (t, string) result
(** Inverse of {!to_json}, used by the write-ahead journal to replay
    completed repairs after a crash. Round trip is render-exact:
    [to_json r' = to_json r] and [csv_row r' = csv_row r] for
    [Ok r' = of_json (to_json r)] ([seconds] is re-read from its 6-decimal
    rendering, so the float may differ in bits the renderings never show).
    Never raises; a torn or corrupted journal line is an [Error]. *)

val emit_jsonl : out_channel -> t Seq.t -> unit
(** Stream reports as JSON lines (one {!to_json} object plus ['\n'] each),
    without materialising the rendered campaign in memory. *)

val emit_csv : out_channel -> t Seq.t -> unit
(** Stream {!csv_header} then one {!csv_row} per report. *)

val csv_header : string
(** Column names matching {!csv_row}; [n_sequence] is [;]-joined, [trace]
    is omitted (use JSON for full traces). *)

val csv_row : t -> string

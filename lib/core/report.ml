type t = {
  case_name : string;
  category : Miri.Diag.ub_kind;
  passed : bool;
  semantic : bool;
  seconds : float;
  llm_calls : int;
  tokens : int;
  iterations : int;
  solutions_tried : int;
  rollbacks : int;
  n_sequence : int list;
  winning_solution : string option;
  feedback_hit : bool;
  retries : int;
  faults : int;
  breaker_trips : int;
  degraded : bool;
  gave_up : bool;
  trace : string list;
}

(* -- machine-readable output ---------------------------------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* The report schema is versioned explicitly so every surface that carries
   a rendered report — journal record segments, --out JSONL files, the
   serve wire protocol — shares one codec whose evolution is detectable:
   a reader confronted with a future schema refuses instead of silently
   misreading renamed fields. Historical v-less lines (PR 3..5 journals)
   are accepted as version 1. *)
let codec_version = 1

let to_json t =
  let field name v = Printf.sprintf "%s:%s" (json_string name) v in
  let strings xs = "[" ^ String.concat "," (List.map json_string xs) ^ "]" in
  let ints xs = "[" ^ String.concat "," (List.map string_of_int xs) ^ "]" in
  "{"
  ^ String.concat ","
      [ field "v" (string_of_int codec_version);
        field "case" (json_string t.case_name);
        field "category" (json_string (Miri.Diag.kind_name t.category));
        field "passed" (string_of_bool t.passed);
        field "semantic" (string_of_bool t.semantic);
        field "seconds" (Printf.sprintf "%.6f" t.seconds);
        field "llm_calls" (string_of_int t.llm_calls);
        field "tokens" (string_of_int t.tokens);
        field "iterations" (string_of_int t.iterations);
        field "solutions_tried" (string_of_int t.solutions_tried);
        field "rollbacks" (string_of_int t.rollbacks);
        field "n_sequence" (ints t.n_sequence);
        field "winning_solution"
          (match t.winning_solution with Some s -> json_string s | None -> "null");
        field "feedback_hit" (string_of_bool t.feedback_hit);
        field "retries" (string_of_int t.retries);
        field "faults" (string_of_int t.faults);
        field "breaker_trips" (string_of_int t.breaker_trips);
        field "degraded" (string_of_bool t.degraded);
        field "gave_up" (string_of_bool t.gave_up);
        field "trace" (strings t.trace) ]
  ^ "}"

(* Replay path: the durability journal stores each report as its [to_json]
   line and must reconstruct the value after a crash. Field lookups are
   total — a torn tail segment surfaces as [Error], never an exception. *)
let of_json line =
  let ( let* ) r f = Result.bind r f in
  let open Rb_util.Json in
  let* json = parse line in
  let field name conv =
    match Option.bind (member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "report field %S missing or mistyped" name)
  in
  let* () =
    match member "v" json with
    | None -> Ok ()  (* v-less lines predate the version field: schema v1 *)
    | Some v -> (
      match to_int v with
      | Some v when v = codec_version -> Ok ()
      | Some v -> Error (Printf.sprintf "unsupported report schema version %d" v)
      | None -> Error "report field \"v\" mistyped")
  in
  let* case_name = field "case" to_str in
  let* category_name = field "category" to_str in
  let* category =
    match Miri.Diag.kind_of_name category_name with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown UB category %S" category_name)
  in
  let* passed = field "passed" to_bool in
  let* semantic = field "semantic" to_bool in
  let* seconds = field "seconds" to_float in
  let* llm_calls = field "llm_calls" to_int in
  let* tokens = field "tokens" to_int in
  let* iterations = field "iterations" to_int in
  let* solutions_tried = field "solutions_tried" to_int in
  let* rollbacks = field "rollbacks" to_int in
  let ints_of name =
    let* xs = field name to_list in
    List.fold_right
      (fun x acc ->
        let* acc = acc in
        match to_int x with
        | Some i -> Ok (i :: acc)
        | None -> Error (Printf.sprintf "non-integer in %S" name))
      xs (Ok [])
  in
  let strings_of name =
    let* xs = field name to_list in
    List.fold_right
      (fun x acc ->
        let* acc = acc in
        match to_str x with
        | Some s -> Ok (s :: acc)
        | None -> Error (Printf.sprintf "non-string in %S" name))
      xs (Ok [])
  in
  let* n_sequence = ints_of "n_sequence" in
  let* winning_solution =
    match member "winning_solution" json with
    | Some Rb_util.Json.Null -> Ok None
    | Some (Rb_util.Json.Str s) -> Ok (Some s)
    | _ -> Error "report field \"winning_solution\" missing or mistyped"
  in
  let* feedback_hit = field "feedback_hit" to_bool in
  let* retries = field "retries" to_int in
  let* faults = field "faults" to_int in
  let* breaker_trips = field "breaker_trips" to_int in
  let* degraded = field "degraded" to_bool in
  let* gave_up = field "gave_up" to_bool in
  let* trace = strings_of "trace" in
  Ok
    { case_name; category; passed; semantic; seconds; llm_calls; tokens;
      iterations; solutions_tried; rollbacks; n_sequence; winning_solution;
      feedback_hit; retries; faults; breaker_trips; degraded; gave_up; trace }

let csv_header =
  "case,category,passed,semantic,seconds,llm_calls,tokens,iterations,\
   solutions_tried,rollbacks,n_sequence,winning_solution,feedback_hit,\
   retries,faults,breaker_trips,degraded,gave_up"

(* RFC 4180: a field containing a comma, double quote, CR or LF is wrapped
   in double quotes with embedded quotes doubled. CR matters: a bare \r in
   an unquoted field is read back as a line break by strict parsers, which
   shifts every subsequent column. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_row t =
  String.concat ","
    [ csv_field t.case_name;
      csv_field (Miri.Diag.kind_name t.category);
      string_of_bool t.passed;
      string_of_bool t.semantic;
      Printf.sprintf "%.6f" t.seconds;
      string_of_int t.llm_calls;
      string_of_int t.tokens;
      string_of_int t.iterations;
      string_of_int t.solutions_tried;
      string_of_int t.rollbacks;
      csv_field (String.concat ";" (List.map string_of_int t.n_sequence));
      csv_field (Option.value t.winning_solution ~default:"");
      string_of_bool t.feedback_hit;
      string_of_int t.retries;
      string_of_int t.faults;
      string_of_int t.breaker_trips;
      string_of_bool t.degraded;
      string_of_bool t.gave_up ]

let emit_jsonl oc reports =
  Seq.iter
    (fun r ->
      output_string oc (to_json r);
      output_char oc '\n')
    reports

let emit_csv oc reports =
  output_string oc csv_header;
  output_char oc '\n';
  Seq.iter
    (fun r ->
      output_string oc (csv_row r);
      output_char oc '\n')
    reports

let summary_line t =
  Printf.sprintf "%-28s %-18s pass=%b exec=%b %6.1fs iters=%d sols=%d%s%s%s%s" t.case_name
    (Miri.Diag.kind_name t.category)
    t.passed t.semantic t.seconds t.iterations t.solutions_tried
    (if t.feedback_hit then " [feedback]" else "")
    (if t.degraded then Printf.sprintf " [degraded r=%d f=%d]" t.retries t.faults else "")
    (if t.gave_up then " [gave-up]" else "")
    (match t.winning_solution with Some s -> " <" ^ s ^ ">" | None -> "")

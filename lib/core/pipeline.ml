type config = {
  model : Llm_sim.Profile.model;
  temperature : float;
  use_kb : bool;
  use_feedback : bool;
  use_cache : bool;
  rollback : Slow_think.rollback_policy;
  enable_replace : bool;
  enable_assert : bool;
  enable_modify : bool;
  enable_abstract : bool;
  max_solutions : int;
  max_iters : int;
  seed : int;
  fault_rate : float;       (* total injected-LLM-fault rate, 0 = oracle API *)
  max_retries : int;        (* retries per faulted call before degrading *)
  deadline : float option;  (* per-repair simulated-seconds budget *)
  kb_dir : string option;   (* persistent KB store directory; None = in-memory *)
  kb_readonly : bool;       (* open the persistent KB without the writer lock *)
}

let default_config =
  {
    model = Llm_sim.Profile.Gpt4;
    temperature = 0.5;
    use_kb = true;
    use_feedback = true;
    use_cache = true;
    rollback = Slow_think.Adaptive;
    enable_replace = true;
    enable_assert = true;
    enable_modify = true;
    enable_abstract = true;
    max_solutions = 3;
    max_iters = 6;
    seed = 1;
    fault_rate = 0.0;
    max_retries = 3;
    deadline = None;
    kb_dir = None;
    kb_readonly = false;
  }

type session = {
  cfg : config;
  sclock : Rb_util.Simclock.t;
  client : Llm_sim.Client.t;
  resilient : Llm_sim.Resilient.t;
  kb : Knowledge.Kb.t option;
  feedback : Feedback.t option;
  rng : Rb_util.Rng.t;
  cache : Miri.Machine.Cache.t;
}

let create_session cfg =
  let sclock = Rb_util.Simclock.create () in
  (* the fault plan (when any) owns its RNG and is seeded off the session
     seed, so a campaign's fault schedule is as reproducible as its choices *)
  let faults =
    if cfg.fault_rate > 0.0 then
      Some
        (Llm_sim.Faults.create
           ~seed:((cfg.seed * 7919) + 13)
           (Llm_sim.Faults.uniform cfg.fault_rate))
    else None
  in
  let client =
    Llm_sim.Client.create ~seed:cfg.seed ?faults ~clock:sclock
      (Llm_sim.Profile.get cfg.model)
  in
  (* graceful degradation target: the cheapest profile, sharing the clock
     but fault-free (a different provider does not share the outage) *)
  let fallback =
    Llm_sim.Client.create ~seed:((cfg.seed * 13) + 5) ~clock:sclock
      (Llm_sim.Profile.get Llm_sim.Profile.Gpt35)
  in
  let resilient =
    Llm_sim.Resilient.create
      ~seed:((cfg.seed * 17) + 29)
      ~config:
        { Llm_sim.Resilient.default_config with
          Llm_sim.Resilient.max_retries = cfg.max_retries;
          deadline = cfg.deadline }
      ~fallback client
  in
  let kb =
    if not cfg.use_kb then None
    else
      match cfg.kb_dir with
      | None ->
        let kb = Knowledge.Kb.create ~clock:sclock () in
        Knowledge.Kb.seed_default kb;
        Some kb
      | Some dir -> (
        (* shared persistent store: the query snapshot is frozen at open, so
           this campaign is deterministic whatever other campaigns append *)
        match
          Knowledge.Kb.open_dir ~readonly:cfg.kb_readonly ~dir ~clock:sclock ()
        with
        | Ok kb -> Some kb
        | Error msg ->
          failwith (Printf.sprintf "knowledge base at %s: %s" dir msg))
  in
  let feedback = if cfg.use_feedback then Some (Feedback.create ()) else None in
  { cfg; sclock; client; resilient; kb; feedback;
    rng = Rb_util.Rng.create (cfg.seed * 31 + 7);
    cache = Miri.Machine.Cache.create ~enabled:cfg.use_cache () }

let clock s = s.sclock
let config s = s.cfg
let llm_stats s = Llm_sim.Client.stats s.client
let resilience s = s.resilient
let verification_cache s = s.cache

(* restrict a plan to the enabled agents *)
let filter_solution cfg (solution : Solution.t) : Solution.t =
  let keep = function
    | Solution.Abstract -> cfg.enable_abstract
    | Solution.Fix Ub_class.C_replace -> cfg.enable_replace
    | Solution.Fix Ub_class.C_assert -> cfg.enable_assert
    | Solution.Fix Ub_class.C_modify -> cfg.enable_modify
  in
  { solution with Solution.steps = List.filter keep solution.Solution.steps }

(* Domain-local memo of collect-mode runs of *canonical* buggy programs.
   Node ids restart per repair (scoped_ids) and verification is id-neutral,
   so the buggy parse of a given case carries identical ids in every
   session: its run results are reproducible and safe to share across the
   sessions a domain executes. Keyed on both sources (the reference is
   parsed first and shifts the buggy parse's id origin) plus the run
   config. *)
let canonical_run_memo :
    (string, Miri.Machine.run_result) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 128)

let run_config_key (c : Miri.Machine.config) =
  Printf.sprintf "%s|%d|%d|%b|%d|%d|%s|%s"
    (match c.Miri.Machine.mode with
    | Miri.Machine.Stop_first -> "S"
    | Miri.Machine.Collect n -> "C" ^ string_of_int n)
    c.Miri.Machine.seed c.Miri.Machine.max_steps c.Miri.Machine.trace
    c.Miri.Machine.max_allocs c.Miri.Machine.max_alloc_bytes
    (* the engines are observationally identical, so sharing entries would
       be sound; keying on the engine keeps the memo trivially exact *)
    (match c.Miri.Machine.engine with
    | Miri.Machine.Bytecode -> "B"
    | Miri.Machine.Tree_walk -> "T")
    (String.concat "," (Array.to_list (Array.map Int64.to_string c.Miri.Machine.inputs)))

(* Memoizing stand-in for [Miri.Machine.run], valid only for the canonical
   [buggy] parse of [case] (compared physically). *)
let make_runner session (case : Dataset.Case.t) buggy program info config =
  if program == buggy && Miri.Machine.Cache.enabled session.cache then begin
    let tbl = Domain.DLS.get canonical_run_memo in
    let key =
      String.concat "\x00"
        [ run_config_key config; case.Dataset.Case.fixed_src;
          case.Dataset.Case.buggy_src ]
    in
    match Hashtbl.find_opt tbl key with
    | Some r ->
      Miri.Machine.Cache.record_hit session.cache;
      r
    | None ->
      Miri.Machine.Cache.record_miss session.cache;
      (* whether this miss happens at all depends on which jobs this
         domain executed before (the memo outlives sessions), so the run
         must not emit trace events or metrics: campaign traces stay
         byte-identical whatever the job/domain interleaving. The
         enclosing "interpret" span still accounts for detection. *)
      let r =
        Obs.Trace.without_ambient (fun () ->
            Obs.Metrics.with_registry (Obs.Metrics.create ()) (fun () ->
                Miri.Machine.run ~config program info))
      in
      Hashtbl.add tbl key r;
      r
  end
  else Miri.Machine.run ~config program info

let make_env session (case : Dataset.Case.t) ~buggy : Env.t =
  {
    Env.clock = session.sclock;
    client = session.client;
    sampling = { Llm_sim.Client.temperature = session.cfg.temperature };
    kb = session.kb;
    scorer = Dataset.Semantic.score ~cache:session.cache case;
    reference = Some (Dataset.Case.fixed case);
    probes = case.Dataset.Case.probes;
    ref_panics =
      (* the reference observations double as the panic profile, so a warm
         cache skips the reference runs (and re-parses) entirely *)
      List.map
        (fun (o : Dataset.Semantic.observation) -> o.Dataset.Semantic.panicked)
        (Dataset.Semantic.reference_observations ~cache:session.cache case);
    rng = session.rng;
    resilient = Some session.resilient;
    runner = Some (make_runner session case buggy);
  }

type attempt = {
  at_exec : Slow_think.execution;
  at_solution : Solution.t;
  at_semantic : bool;
}

(* final verdict: full multi-probe pass/exec check, charged per probe *)
let judge session env (case : Dataset.Case.t) program =
  Obs.Trace.in_span "re-verify"
    ~attrs:(fun () ->
      [ ("probes", Obs.Trace.I (List.length case.Dataset.Case.probes)) ])
    ~post:(fun (v : Dataset.Semantic.verdict) ->
      [ ("passes", Obs.Trace.B v.Dataset.Semantic.passes);
        ("semantic", Obs.Trace.B v.Dataset.Semantic.semantic) ])
    (fun () ->
      List.iter
        (fun _ -> Rb_util.Simclock.charge env.Env.clock (Env.verify_cost program))
        case.Dataset.Case.probes;
      Dataset.Semantic.check ~cache:session.cache case program)

let repair_common session (case : Dataset.Case.t) (solutions_override : Solution.t list option) :
    Report.t =
  (* Node ids restart at a fixed origin for every repair, so id-bearing
     strings (edit labels, traces) — and therefore the whole Report — are
     identical whether campaigns run sequentially or sharded across
     domains. *)
  Minirust.Ast.scoped_ids @@ fun () ->
  let cfg = session.cfg in
  (* trace timestamps follow this session's simulated clock; installed per
     repair so Marshal-restored (resumed) sessions re-anchor correctly *)
  Obs.Trace.set_ambient_time_source (fun () ->
      Rb_util.Simclock.now session.sclock);
  (* the buggy parse comes first, straight after the id reset: its node ids
     are then a pure function of the case source — canonical per case — which
     is what makes the cross-session run memo in [make_runner] sound *)
  let buggy =
    Obs.Trace.in_span "parse"
      ~attrs:(fun () -> [ ("case", Obs.Trace.S case.Dataset.Case.name) ])
      (fun () -> Dataset.Case.buggy case)
  in
  let env = make_env session case ~buggy in
  (* open the per-repair deadline window and clear the degradation flags;
     resilience stats are cumulative per session, so deltas are taken *)
  Llm_sim.Resilient.start_repair session.resilient;
  let rstats = Llm_sim.Resilient.stats session.resilient in
  let retries0 = rstats.Llm_sim.Resilient.retries in
  let faults0 = rstats.Llm_sim.Resilient.faults in
  let trips0 = rstats.Llm_sim.Resilient.breaker_trips in
  let start = Rb_util.Simclock.now session.sclock in
  let calls0 = (Llm_sim.Client.stats session.client).Llm_sim.Client.calls in
  (* F1: detection — shares the canonical-run memo with the first slow-think
     verification of every solution, which re-checks this same program *)
  Rb_util.Simclock.charge session.sclock (Env.verify_cost buggy);
  let inputs = match case.Dataset.Case.probes with [] -> [||] | p :: _ -> p in
  let detect_config =
    { Miri.Machine.default_config with
      Miri.Machine.mode = Miri.Machine.Collect 25; seed = 42; max_steps = 200_000;
      inputs; trace = false }
  in
  let run_result =
    match Obs.Trace.in_span "typecheck" (fun () -> Minirust.Typecheck.check buggy) with
    | Ok info ->
      Obs.Trace.in_span "interpret"
        ~post:(fun (r : Miri.Machine.run_result) ->
          [ ("steps", Obs.Trace.I r.Miri.Machine.steps);
            ("errors", Obs.Trace.I r.Miri.Machine.error_count) ])
        (fun () -> make_runner session case buggy buggy info detect_config)
    | Error _ ->
      (* corpus programs always compile; treat as an immediate failure *)
      { Miri.Machine.outcome = Miri.Machine.Step_limit; output = []; diags = [];
        steps = 0; error_count = 1; events = [] }
  in
  let features = Features.extract buggy run_result in
  (* F2: fast thinking *)
  let generation =
    match solutions_override with
    | Some solutions -> { Fast_think.solutions; feedback_hit = None }
    | None ->
      Obs.Trace.in_span "fast-think"
        ~post:(fun (g : Fast_think.generation) ->
          [ ("solutions", Obs.Trace.I (List.length g.Fast_think.solutions));
            ("feedback_hit", Obs.Trace.B (g.Fast_think.feedback_hit <> None)) ])
        (fun () ->
          Fast_think.generate env ~program:buggy ~features
            ~feedback:session.feedback ~abstract_enabled:cfg.enable_abstract
            ~count:cfg.max_solutions)
  in
  let solutions =
    List.filter
      (fun s -> s.Solution.steps <> [])
      (List.map (filter_solution cfg) generation.Fast_think.solutions)
  in
  (* feedback recall enriches the prompt for all subsequent agent calls *)
  let prompt_extras =
    match generation.Fast_think.feedback_hit with
    | Some hit -> [ (Llm_sim.Prompt.sec_feedback, Feedback.to_prompt_section hit) ]
    | None -> []
  in
  (* S1–S2: execute solutions until one is semantically acceptable; every
     agent call sees the fast-thinking features (and recalled feedback) *)
  let base_extras =
    (Llm_sim.Prompt.sec_features, Features.to_prompt_section features) :: prompt_extras
  in
  let rec try_solutions acc = function
    | [] -> acc
    | _ :: _ when Llm_sim.Resilient.deadline_exceeded session.resilient ->
      (* watchdog: the repair budget is gone — skip the remaining
         slow-thinking iterations instead of burning simulated hours *)
      Llm_sim.Resilient.note_deadline_skip session.resilient;
      acc
    | solution :: rest ->
      let exec =
        Obs.Trace.in_span "slow-think"
          ~attrs:(fun () ->
            [ ("solution", Obs.Trace.S solution.Solution.sname) ])
          ~post:(fun (e : Slow_think.execution) ->
            [ ("passed", Obs.Trace.B e.Slow_think.passed);
              ("iterations", Obs.Trace.I e.Slow_think.iterations);
              ("rollbacks", Obs.Trace.I e.Slow_think.rollbacks);
              ("errors", Obs.Trace.I e.Slow_think.errors) ])
          (fun () ->
            Slow_think.execute ~prompt_extras:base_extras env ~program:buggy
              ~solution ~rollback:cfg.rollback ~max_iters:cfg.max_iters)
      in
      let verdict =
        if exec.Slow_think.passed then judge session env case exec.Slow_think.final
        else { Dataset.Semantic.passes = false; semantic = false; per_probe = [] }
      in
      let attempt =
        { at_exec = exec; at_solution = solution; at_semantic = verdict.Dataset.Semantic.semantic }
      in
      let acc = attempt :: acc in
      if verdict.Dataset.Semantic.semantic then acc else try_solutions acc rest
  in
  let attempts = List.rev (try_solutions [] solutions) in
  (* pick the best attempt: semantic > passed > fewest errors *)
  let best =
    List.fold_left
      (fun best a ->
        match best with
        | None -> Some a
        | Some b ->
          let score x =
            (if x.at_semantic then 4 else 0)
            + (if x.at_exec.Slow_think.passed then 2 else 0)
            - min 1 x.at_exec.Slow_think.errors
          in
          if score a > score b then Some a else Some b)
      None attempts
  in
  let passed, semantic, winning, n_sequence, iterations, rollbacks, trace =
    match best with
    | None -> (false, false, None, [], 0, 0, [])
    | Some a ->
      let v = judge session env case a.at_exec.Slow_think.final in
      ( v.Dataset.Semantic.passes,
        v.Dataset.Semantic.semantic,
        Some a.at_solution.Solution.sname,
        a.at_exec.Slow_think.n_sequence,
        List.fold_left (fun n at -> n + at.at_exec.Slow_think.iterations) 0 attempts,
        List.fold_left (fun n at -> n + at.at_exec.Slow_think.rollbacks) 0 attempts,
        a.at_exec.Slow_think.trace )
  in
  (* S3: learn from success *)
  (match best with
  | Some a when semantic ->
    let vec = Features.vector buggy features in
    let winning_class =
      List.fold_left
        (fun acc step -> match step with Solution.Fix c -> Some c | _ -> acc)
        None a.at_solution.Solution.steps
    in
    (match session.feedback with
    | Some fb ->
      Feedback.learn fb vec
        { Feedback.category = case.Dataset.Case.category; plan = a.at_solution; winning_class }
    | None -> ());
    (* a persistent KB additionally accumulates cross-campaign expertise;
       its open snapshot is frozen, so this never perturbs the current
       campaign's retrieval (in-memory KBs keep their historical
       seed-only content) *)
    (match session.kb with
    | Some kb when Knowledge.Kb.persistent_dir kb <> None ->
      let recommended =
        match winning_class with
        | Some Ub_class.C_replace -> Repairs.Rule.Replace
        | Some Ub_class.C_assert -> Repairs.Rule.Assert
        | Some Ub_class.C_modify | None -> Repairs.Rule.Modify
      in
      let advice =
        Printf.sprintf
          "a prior %s case (%s) was repaired by the %s plan; try its fix class first"
          (Miri.Diag.kind_name case.Dataset.Case.category)
          case.Dataset.Case.name a.at_solution.Solution.sname
      in
      Knowledge.Kb.learn kb vec
        { Knowledge.Kb.category = case.Dataset.Case.category; advice; recommended }
    | _ -> ())
  | _ -> ());
  let stats = Llm_sim.Client.stats session.client in
  let report =
  {
    Report.case_name = case.Dataset.Case.name;
    category = case.Dataset.Case.category;
    passed;
    semantic;
    seconds = Rb_util.Simclock.now session.sclock -. start;
    llm_calls = stats.Llm_sim.Client.calls - calls0;
    tokens = stats.Llm_sim.Client.tokens_in + stats.Llm_sim.Client.tokens_out;
    iterations;
    solutions_tried = List.length attempts;
    rollbacks;
    n_sequence;
    winning_solution = winning;
    feedback_hit = generation.Fast_think.feedback_hit <> None;
    retries = rstats.Llm_sim.Resilient.retries - retries0;
    faults = rstats.Llm_sim.Resilient.faults - faults0;
    breaker_trips = rstats.Llm_sim.Resilient.breaker_trips - trips0;
    degraded = Llm_sim.Resilient.degraded session.resilient;
    gave_up = Llm_sim.Resilient.gave_up session.resilient && not passed;
    trace;
  }
  in
  Obs.Metrics.inc "repairs.total";
  if report.Report.passed then Obs.Metrics.inc "repairs.passed";
  if report.Report.semantic then Obs.Metrics.inc "repairs.semantic";
  if report.Report.degraded then Obs.Metrics.inc "repairs.degraded";
  if report.Report.gave_up then Obs.Metrics.inc "repairs.gave_up";
  Obs.Metrics.inc ~by:report.Report.llm_calls "repairs.llm_calls";
  Obs.Metrics.inc ~by:report.Report.retries "repairs.retries";
  Obs.Metrics.inc ~by:report.Report.faults "repairs.faults";
  Obs.Metrics.observe_s "repair.seconds" report.Report.seconds;
  Obs.Trace.note "repair" (fun () ->
      [ ("case", Obs.Trace.S report.Report.case_name);
        ("passed", Obs.Trace.B report.Report.passed);
        ("semantic", Obs.Trace.B report.Report.semantic);
        ("seconds", Obs.Trace.F report.Report.seconds);
        ("llm_calls", Obs.Trace.I report.Report.llm_calls);
        ("solutions", Obs.Trace.I report.Report.solutions_tried) ]);
  report

let repair session case = repair_common session case None

let repair_with_solution session case solution =
  repair_common session case (Some [ solution ])

let run_campaign cfg cases =
  let session = create_session cfg in
  List.map (repair session) cases

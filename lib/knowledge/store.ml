(* Generic in-memory vector store: Knn holds the packed vectors, this
   module pairs rows with payloads and enforces the dimension discipline.
   Ids are Knn row numbers — dense, monotonic, insertion-ordered — which
   is exactly the tie-break order every query uses. *)

type 'a t = {
  mutable knn : Knn.t option;  (* created on first add (or ?dim) *)
  mutable payloads : 'a array; (* row -> payload; length >= size *)
  mutable n : int;
  mutable quarantined : int;
  mutable scanned_last : int;
}

let create ?dim () =
  { knn = Option.map (fun d -> Knn.create ~dim:d) dim;
    payloads = [||]; n = 0; quarantined = 0; scanned_last = 0 }

let size t = t.n
let quarantined t = t.quarantined
let dim t = Option.map Knn.dim t.knn
let scanned_last t = t.scanned_last

let add t vec payload =
  let knn =
    match t.knn with
    | Some k -> k
    | None ->
      let k = Knn.create ~dim:(max 1 (Array.length vec)) in
      t.knn <- Some k;
      k
  in
  if Array.length vec <> Knn.dim knn then
    (* dimension drift is data rot, not a crash: refuse and count *)
    t.quarantined <- t.quarantined + 1
  else begin
    if t.n >= Array.length t.payloads then begin
      let cap = max 16 (2 * max 1 (Array.length t.payloads)) in
      let payloads = Array.make cap payload in
      Array.blit t.payloads 0 payloads 0 t.n;
      t.payloads <- payloads
    end;
    let row = Knn.add knn vec in
    t.payloads.(row) <- payload;
    t.n <- row + 1
  end

let entries t =
  match t.knn with
  | None -> []
  | Some knn -> List.init t.n (fun i -> (i, Knn.get knn i, t.payloads.(i)))

let query_ids ?domains t vec ~k =
  match t.knn with
  | None ->
    t.scanned_last <- 0;
    []
  | Some knn ->
    if Array.length vec <> Knn.dim knn then begin
      t.scanned_last <- 0;
      []
    end
    else begin
      let r = Knn.search ?domains knn vec ~k in
      t.scanned_last <- r.Knn.scanned;
      List.map (fun (s, row) -> (s, row, t.payloads.(row))) r.Knn.hits
    end

let query ?domains t vec ~k =
  List.map (fun (s, _, p) -> (s, p)) (query_ids ?domains t vec ~k)

let query_above t vec ~threshold =
  match t.knn with
  | None ->
    t.scanned_last <- 0;
    []
  | Some knn ->
    if Array.length vec <> Knn.dim knn then begin
      t.scanned_last <- 0;
      []
    end
    else begin
      let sc = Knn.scores knn vec in
      t.scanned_last <- t.n;
      let hits = ref [] in
      (* rows descending so the accumulated list comes out id-ascending,
         ready for the stable by-score sort *)
      for row = t.n - 1 downto 0 do
        let s = Float.Array.get sc row in
        if s > threshold then hits := (s, row) :: !hits
      done;
      !hits
      |> List.stable_sort (fun (a, _) (b, _) -> compare (b : float) a)
      |> List.map (fun (s, row) -> (s, t.payloads.(row)))
    end

(** Persistent, append-only, compacting segment store for feature-vector
    records.

    On-disk layout of a store directory:
    - [META] — store header ([Rb_util.Fsfile.write_checked]): magic,
      vector dimension and {!Featvec} version every record must match;
    - [seg-NNNNNNNN.seg] — sealed segments, each a whole-file
      CRC-checked batch (tmp → fsync → atomic rename) of JSONL records;
    - [tail.log] — the active append log: one length+CRC framed record
      per append, fsynced, so a kill -9 can only tear the final frame;
    - [LOCK] — single-writer lock (pid-stamped, [lockf]);
    - [quarantined/] — set-aside data: whole corrupt segments under
      [corrupt/], dimension/version-mismatched records in
      [records.jsonl]. Quarantine preserves bytes; it never deletes.

    Records carry dense monotonic ids. Every mutation is crash-safe by
    construction: appends are single framed writes (a torn tail heals to
    the last whole frame), sealing writes the new segment {e before}
    removing the tail, and compaction writes the merged segment before
    deleting its inputs — any crash point leaves a directory whose load
    is a consistent prefix of the writes, with duplicates resolved by id
    (first wins). Loading never raises on damage and never loses bytes:
    damage is healed, quarantined, or skipped, and counted. *)

type record = {
  id : int;               (** dense, monotonic, unique after dedupe *)
  fv : int;               (** featurization version stamp *)
  vec : float array;
  payload : Rb_util.Json.t;
}

type load_report = {
  records : record list;  (** live records, id ascending *)
  segments : int;         (** sealed segments contributing records *)
  tail_records : int;     (** records recovered from the tail log *)
  healed_tail_bytes : int;(** bytes dropped after the last whole frame *)
  corrupt_segments : int; (** segments set aside (or skipped, read-only) *)
  mismatched : int;       (** records quarantined for a dim/version clash *)
  duplicates : int;       (** records dropped by id-dedupe *)
}

val load : ?expect:int * int -> string -> (load_report, string) result
(** Read-only load: parse META (or adopt [expect] = (dim, featvec
    version) when META is missing), classify every segment and the tail,
    and return the consistent record set. Never writes; damage beyond the
    healed prefix is skipped and counted. [Error] when the directory does
    not exist or META disagrees with [expect]. *)

type writer

val open_writer :
  ?expect:int * int ->
  ?seal_every:int ->
  ?compact_at:int ->
  dir:string ->
  unit ->
  (writer * load_report, string) result
(** Open (creating if missing) for appending: take the writer lock, run
    the {!load} scrub in fixing mode — truncate the torn tail bytes, move
    corrupt segments to quarantine, persist mismatched records there —
    and position the id counter after the highest live id. [seal_every]
    (default 256) rolls the tail into a sealed segment; [compact_at]
    (default 8) merges all sealed segments into one when their count
    reaches it. [Error] if another writer holds the lock. *)

val append : writer -> vec:float array -> payload:Rb_util.Json.t -> (int, string) result
(** Durably append one record (framed write + fsync); returns its id.
    Sealing/compaction thresholds are applied after the append. A vector
    whose dimension disagrees with META is quarantined and reported as
    [Error] — the store never accepts it. *)

val records : writer -> record list
(** Live records, id ascending, reflecting every append so far. *)

val next_id : writer -> int

val seal : writer -> unit
(** Roll the tail log (if non-empty) into a sealed segment now. *)

val compact : writer -> unit
(** [seal], then merge every sealed segment into a single fresh segment
    and delete the inputs. Load-equivalent before and after. *)

val close : writer -> unit
(** Seal and release the lock. The writer must not be used afterwards. *)

val fsck : ?fix:bool -> ?expect:int * int -> string -> (load_report, string) result
(** The startup scrub as a standalone check. [fix = false] (default)
    classifies only; [fix = true] additionally truncates torn tails and
    quarantines corrupt segments / mismatched records (requires the
    writer lock to be free). *)

(** Feature vectors over pruned AST sketches.

    A sketch is hashed into a fixed-dimension vector (feature hashing of
    node-kind unigrams and parent-child bigrams, plus a UB-category one-hot
    block). Cosine similarity over these vectors is what the knowledge base
    and the feedback store use to find "semantically similar" errors. *)

val dim : int

val hash_dim : int
(** Width of the hashed structural block; components [hash_dim, dim) are
    the UB-category one-hot block. *)

val version : int
(** Featurization version. Persisted vectors are stamped with
    [(version, dim)]; a store quarantines entries whose stamp disagrees
    with the loading code, so vectors never silently cross featurization
    changes. *)

val category_index : Miri.Diag.ub_kind -> int
(** Total map from category to its one-hot slot in the category block —
    position [hash_dim + category_index k]. Checked at module
    initialization against [Miri.Diag.all_kinds]: a drifted enumeration
    fails fast instead of aliasing categories. *)

val of_sketch : Prune.sketch -> Miri.Diag.ub_kind option -> float array
(** L2-normalized feature vector. *)

val of_program : Minirust.Ast.program -> Miri.Diag.t list -> float array
(** Convenience: prune then vectorize, tagging with the first diag's kind. *)

val cosine : float array -> float array -> float
(** In [-1, 1]; 1.0 for identical directions. Zero vectors give 0.
    @raise Invalid_argument on mismatched dimensions — comparing vectors
    of different featurizations is a bug, not a low similarity. *)

open Minirust
open Ast

let hash_dim = 48
let cat_dim = List.length Miri.Diag.all_kinds
let dim = hash_dim + cat_dim

(* Bumped whenever the featurization changes shape or semantics: persisted
   vectors are stamped with (version, dim) and a store refuses — by
   quarantining, not crashing — entries whose stamp disagrees with the
   code that is loading them. *)
let version = 1

(* Total category -> one-hot-index map. The category block is addressed by
   position, so this must agree exactly with [Miri.Diag.all_kinds]; the
   startup check below turns a drifted enumeration into an immediate
   failure instead of silently aliasing a category onto another's slot
   (the old list-scan fallback mapped unknown categories to index 0 —
   i.e. onto [Stack_borrow]). *)
let category_index : Miri.Diag.ub_kind -> int = function
  | Miri.Diag.Stack_borrow -> 0
  | Miri.Diag.Unaligned_pointer -> 1
  | Miri.Diag.Validity -> 2
  | Miri.Diag.Alloc -> 3
  | Miri.Diag.Func_pointer -> 4
  | Miri.Diag.Provenance -> 5
  | Miri.Diag.Panic_bug -> 6
  | Miri.Diag.Func_call -> 7
  | Miri.Diag.Dangling_pointer -> 8
  | Miri.Diag.Both_borrow -> 9
  | Miri.Diag.Concurrency -> 10
  | Miri.Diag.Data_race -> 11

let () =
  (* assert-checked against the canonical enumeration: every kind maps to
     its position in [all_kinds], with no gaps and no aliasing *)
  assert (List.length Miri.Diag.all_kinds = cat_dim);
  List.iteri
    (fun i k ->
      if category_index k <> i then
        failwith
          (Printf.sprintf
             "Featvec.category_index: %S maps to %d but sits at %d in \
              Miri.Diag.all_kinds"
             (Miri.Diag.kind_name k) (category_index k) i))
    Miri.Diag.all_kinds

(* stable string hash (FNV-1a) so vectors do not depend on OCaml's runtime *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let expr_kind_name (e : expr) =
  match e.e with
  | E_unit -> "unit"
  | E_bool _ -> "bool"
  | E_int _ -> "int"
  | E_place _ -> "place"
  | E_unop _ -> "unop"
  | E_binop (op, _, _) -> "binop_" ^ Pretty.binop_str op
  | E_tuple _ -> "tuple"
  | E_array _ -> "array"
  | E_repeat _ -> "repeat"
  | E_ref (Mut, _) -> "ref_mut"
  | E_ref (Imm, _) -> "ref"
  | E_raw_of _ -> "raw_of"
  | E_call _ -> "call"
  | E_call_ptr _ -> "call_ptr"
  | E_cast _ -> "cast"
  | E_transmute _ -> "transmute"
  | E_offset _ -> "offset"
  | E_alloc _ -> "alloc"
  | E_len _ -> "len"
  | E_input _ -> "input"
  | E_atomic_load _ -> "atomic_load"
  | E_atomic_add _ -> "atomic_add"

let place_kind_name = function
  | P_var _ -> "var"
  | P_deref _ -> "deref"
  | P_index _ -> "index"
  | P_index_unchecked _ -> "index_unchecked"
  | P_field _ -> "field"
  | P_union_field _ -> "union_field"

let stmt_kind_name (st : stmt) =
  match st.s with
  | S_let _ -> "let"
  | S_assign _ -> "assign"
  | S_expr _ -> "expr"
  | S_if _ -> "if"
  | S_while _ -> "while"
  | S_block _ -> "block"
  | S_unsafe _ -> "unsafe"
  | S_assert _ -> "assert"
  | S_panic _ -> "panic"
  | S_return _ -> "return"
  | S_print _ -> "print"
  | S_dealloc _ -> "dealloc"
  | S_spawn _ -> "spawn"
  | S_join _ -> "join"
  | S_atomic_store _ -> "atomic_store"

let bump vec feature weight =
  let idx = fnv1a feature mod hash_dim in
  vec.(idx) <- vec.(idx) +. weight

let add_stmt_features vec st =
  let sname = stmt_kind_name st in
  bump vec ("s:" ^ sname) 1.0;
  let _ =
    Edit.map_exprs_in_stmt
      (fun e ->
        let en = expr_kind_name e in
        bump vec ("e:" ^ en) 0.6;
        bump vec ("se:" ^ sname ^ ">" ^ en) 0.4;
        None)
      st
  in
  let _ =
    Edit.map_places_in_stmt
      (fun p ->
        bump vec ("p:" ^ place_kind_name p) 0.6;
        None)
      st
  in
  ()

let normalize vec =
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 vec) in
  if norm > 0.0 then Array.map (fun x -> x /. norm) vec else vec

let of_sketch (sk : Prune.sketch) (kind : Miri.Diag.ub_kind option) =
  let vec = Array.make dim 0.0 in
  List.iter (fun st -> add_stmt_features vec st) sk.Prune.kept_stmts;
  (* Normalize the hashed structural block to unit length before appending
     the category block, so the category signal carries a fixed weight
     regardless of program size: same-category errors in different programs
     stay closer than different-category errors in the same program. *)
  let hash_norm =
    sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 (Array.sub vec 0 hash_dim))
  in
  if hash_norm > 0.0 then
    for i = 0 to hash_dim - 1 do
      vec.(i) <- vec.(i) /. hash_norm
    done;
  (match kind with
  | Some k -> vec.(hash_dim + category_index k) <- 2.0  (* strong category signal *)
  | None -> ());
  normalize vec

let of_program program diags =
  let sk = Prune.prune program diags in
  let kind = match diags with [] -> None | d :: _ -> Some d.Miri.Diag.kind in
  of_sketch sk kind

(* Cosine is only defined between vectors of one featurization; silently
   truncating to the shorter length made a 48-dim vector score against the
   hashed block of a 60-dim one and look plausible. Mismatched dimensions
   are a caller bug (the store quarantines persisted entries before they
   get here), so refuse loudly. *)
let cosine a b =
  let n = Array.length a in
  if Array.length b <> n then
    invalid_arg
      (Printf.sprintf "Featvec.cosine: dimension mismatch (%d vs %d)" n
         (Array.length b));
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  for i = 0 to n - 1 do
    dot := !dot +. (a.(i) *. b.(i));
    na := !na +. (a.(i) *. a.(i));
    nb := !nb +. (b.(i) *. b.(i))
  done;
  if !na = 0.0 || !nb = 0.0 then 0.0 else !dot /. (sqrt !na *. sqrt !nb)

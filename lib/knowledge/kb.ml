module Json = Rb_util.Json

type entry = {
  category : Miri.Diag.ub_kind;
  advice : string;
  recommended : Repairs.Rule.fix_kind;
}

type persist = { dir : string; readonly : bool }

(* Marshal-safety invariant: sessions snapshot their whole state with
   [Marshal], so [t] may hold only plain data — the persistent store is
   referenced by directory name and its writer (lock fd, tail fd) lives in
   the process-global registry below, resolved on every learn. *)
type t = {
  store : entry Store.t;   (* the query snapshot, frozen at open *)
  clock : Rb_util.Simclock.t;
  query_cost : float;
  persist : persist option;
  q_base : int;            (* quarantined before the snapshot: load-time *)
}

let create ?(query_cost = 3.0) ~clock () =
  { store = Store.create (); clock; query_cost; persist = None; q_base = 0 }

let size t = Store.size t.store
let quarantined t = t.q_base + Store.quarantined t.store
let persistent_dir t = Option.map (fun p -> p.dir) t.persist

(* -- entry codec -------------------------------------------------------- *)

let all_fix_kinds = [ Repairs.Rule.Replace; Repairs.Rule.Assert; Repairs.Rule.Modify ]

let entry_to_json e =
  Json.Obj
    [ ("cat", Json.Str (Miri.Diag.kind_name e.category));
      ("advice", Json.Str e.advice);
      ("fix", Json.Str (Repairs.Rule.fix_kind_name e.recommended)) ]

let entry_of_json j =
  match
    ( Option.bind (Json.member "cat" j) Json.to_str,
      Option.bind (Json.member "advice" j) Json.to_str,
      Option.bind (Json.member "fix" j) Json.to_str )
  with
  | Some cat, Some advice, Some fix -> (
    match
      ( List.find_opt (fun k -> Miri.Diag.kind_name k = cat) Miri.Diag.all_kinds,
        List.find_opt (fun k -> Repairs.Rule.fix_kind_name k = fix) all_fix_kinds )
    with
    | Some category, Some recommended -> Some { category; advice; recommended }
    | _ -> None)
  | _ -> None

(* -- seeding ------------------------------------------------------------ *)

(* Build a representative sketch vector for a category from a tiny canonical
   program exhibiting it; the one-hot category block dominates matching, the
   hashed block adds structure sensitivity. *)
let seed_vec category =
  let sk = { Prune.kept_stmts = []; kept_fns = []; dropped = 0 } in
  Featvec.of_sketch sk (Some category)

let default_entries =
  [ (Miri.Diag.Stack_borrow,
     "a reference created after the raw pointer invalidated its tag; re-derive the \
      pointer or access the place directly", Repairs.Rule.Replace);
    (Miri.Diag.Unaligned_pointer,
     "the pointer's address is not a multiple of the access alignment; round the \
      offset or raise the allocation's alignment", Repairs.Rule.Modify);
    (Miri.Diag.Validity,
     "an invalid value was produced (uninitialized read or bad bool); initialize \
      the memory or derive the value with a comparison", Repairs.Rule.Modify);
    (Miri.Diag.Alloc,
     "allocation misuse: free exactly once, with the allocated layout, and free \
      everything before exit", Repairs.Rule.Modify);
    (Miri.Diag.Func_pointer,
     "the fn pointer's claimed signature disagrees with the callee; fix the \
      transmute target or call the item directly", Repairs.Rule.Modify);
    (Miri.Diag.Provenance,
     "an integer-derived pointer has no provenance; derive it from the original \
      place or expose the address first", Repairs.Rule.Replace);
    (Miri.Diag.Panic_bug,
     "a reachable panic: guard the failing operation or repair the arithmetic", Repairs.Rule.Modify);
    (Miri.Diag.Func_call,
     "the callee is not a function; route the call through the intended item", Repairs.Rule.Modify);
    (Miri.Diag.Dangling_pointer,
     "the pointee is dead or out of bounds; use checked indexing or extend the \
      pointee's lifetime", Repairs.Rule.Replace);
    (Miri.Diag.Both_borrow,
     "a shared reference was used after a conflicting mutable borrow; reorder the \
      uses or drop one borrow", Repairs.Rule.Modify);
    (Miri.Diag.Concurrency,
     "a thread was leaked or joined twice; join every spawned handle exactly once", Repairs.Rule.Modify);
    (Miri.Diag.Data_race,
     "unsynchronized conflicting accesses; join before accessing or make the \
      accesses atomic", Repairs.Rule.Replace) ]

(* -- persistent store registry ------------------------------------------ *)

(* One writer per directory per process. lockf record locks are per-process
   (a second fd in the same process would silently "win"), so in-process
   dedupe here plus the on-disk lock for cross-process exclusion together
   give true single-writer semantics. Writers live until process exit; the
   tail log is fsynced per append, so there is nothing to flush.

   The snapshot is frozen once per (process, directory) — NOT re-read per
   open. Every session a process opens on the same store retrieves from
   identical content, whatever has been learned meanwhile, which is what
   makes campaigns independent of session-creation order: sequential and
   domain-parallel schedules, and multi-seed sweeps, see the same KB and
   produce byte-identical reports. New content is visible to the next
   process (the next CLI invocation, the next worker). *)
type shared = {
  sh_writer : Segment.writer option;  (* None = read-only open *)
  sh_records : Segment.record list;   (* the frozen snapshot *)
  sh_quarantined : int;               (* load-time skips (read-only path) *)
}

let registry : (string, shared) Hashtbl.t = Hashtbl.create 7
let registry_mu = Mutex.create ()

let expect_stamp = (Featvec.dim, Featvec.version)

let with_registry f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

(* Assumes [registry_mu] is held: every writer touch — open, seed, append,
   snapshot — happens under the one mutex, because Segment writers are not
   themselves thread-safe and serve's in-process mode runs several runner
   domains against the same store. A read-only entry is upgraded in place
   (a writer is attached) when a writable open or a learn needs one; its
   frozen snapshot is never replaced. *)
let locked_shared ~want_writer dir =
  let current = Hashtbl.find_opt registry dir in
  match current with
  | Some sh when (not want_writer) || Option.is_some sh.sh_writer -> Ok sh
  | _ ->
    if want_writer then (
      match Segment.open_writer ~expect:expect_stamp ~dir () with
      | Error e -> Error e
      | Ok (w, _report) ->
        if Segment.records w = [] then
          List.iter
            (fun (category, advice, recommended) ->
              let e = { category; advice; recommended } in
              match
                Segment.append w ~vec:(seed_vec category)
                  ~payload:(entry_to_json e)
              with
              | Ok _ -> ()
              | Error msg -> failwith ("Kb: seeding failed: " ^ msg))
            default_entries;
        let sh =
          match current with
          | Some sh -> { sh with sh_writer = Some w }
          | None ->
            { sh_writer = Some w; sh_records = Segment.records w;
              sh_quarantined = 0 }
        in
        Hashtbl.replace registry dir sh;
        Ok sh)
    else (
      match Segment.load ~expect:expect_stamp dir with
      | Error e -> Error e
      | Ok r ->
        let sh =
          { sh_writer = None;
            sh_records = r.records;
            sh_quarantined = r.mismatched + r.corrupt_segments }
        in
        Hashtbl.replace registry dir sh;
        Ok sh)

let append_dir dir vec payload =
  with_registry (fun () ->
      match locked_shared ~want_writer:true dir with
      | Error _ -> ()  (* the store went unwritable mid-session: drop *)
      | Ok { sh_writer = Some w; _ } -> ignore (Segment.append w ~vec ~payload)
      | Ok { sh_writer = None; _ } -> ())

(* -- construction ------------------------------------------------------- *)

let learn t vec entry =
  match t.persist with
  | None -> Store.add t.store vec entry
  | Some { readonly = true; _ } -> ()  (* frozen and unwritable: drop *)
  | Some { dir; _ } ->
    (* durably appended for future sessions; the open snapshot stays
       frozen so seeded campaigns remain deterministic *)
    append_dir dir vec (entry_to_json entry)

let seed_default t =
  match t.persist with
  | Some _ -> ()  (* persistent stores are seeded once, at creation *)
  | None ->
    List.iter
      (fun (category, advice, recommended) ->
        learn t (seed_vec category) { category; advice; recommended })
      default_entries

let snapshot_of_records records =
  let store = Store.create ~dim:Featvec.dim () in
  let undecodable = ref 0 in
  List.iter
    (fun (r : Segment.record) ->
      match entry_of_json r.Segment.payload with
      | Some e -> Store.add store r.Segment.vec e
      | None -> incr undecodable)
    records;
  (store, !undecodable)

let open_dir ?(query_cost = 3.0) ?(readonly = false) ~dir ~clock () =
  match
    with_registry (fun () -> locked_shared ~want_writer:(not readonly) dir)
  with
  | Error e -> Error e
  | Ok sh ->
    let store, undecodable = snapshot_of_records sh.sh_records in
    Ok
      { store; clock; query_cost;
        persist = Some { dir; readonly };
        q_base = sh.sh_quarantined + undecodable }

(* -- retrieval ---------------------------------------------------------- *)

let max_hits = 8
let hit_threshold = 0.35

let query t vec =
  let hits =
    Store.query_ids t.store vec ~k:max_hits
    |> List.filter (fun (s, _, _) -> s > hit_threshold)
    |> List.map (fun (s, _, e) -> (s, e))
  in
  (* size-dependent lookup cost: the paper reports KB overhead growing with
     the knowledge base. Charged per row actually scored, so the bucketed
     index on a large store buys back most of the historical full-scan
     cost (and on a small exact scan this is precisely the old
     query_cost + 0.05 * size). *)
  Rb_util.Simclock.charge t.clock
    (t.query_cost +. (0.05 *. float_of_int (Store.scanned_last t.store)));
  hits

let hints_text hits =
  String.concat "\n"
    (List.map
       (fun (score, e) ->
         Printf.sprintf "- [%s, sim %.2f] %s (recommended: %s)"
           (Miri.Diag.kind_name e.category) score e.advice
           (Repairs.Rule.fix_kind_name e.recommended))
       hits)

(* Canonical order: fix_kind declaration order, hit contributions summed in
   hit order (best first), zero-contribution classes dropped — the old
   remove_assoc + cons rebuild surfaced keys by last-touched, leaking
   retrieval order into downstream rule choice. *)
let kind_bias hits =
  List.filter_map
    (fun kind ->
      if not (List.exists (fun (_, e) -> e.recommended = kind) hits) then None
      else
        Some
          ( Repairs.Rule.fix_kind_name kind,
            List.fold_left
              (fun acc (score, e) ->
                if e.recommended = kind then acc +. (0.08 *. score) else acc)
              0.0 hits ))
    all_fix_kinds

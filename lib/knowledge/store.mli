(** An in-memory vector store with cosine-similarity retrieval.

    Entries get dense monotonic ids in insertion order, and every query
    ranks by (similarity descending, id ascending) — so equal-score hits
    surface in insertion order, pinned by test, instead of whatever order
    an internal list happened to accumulate. Retrieval runs on {!Knn}
    (flat-array exact scan, optionally domain-parallel; bucketed index on
    large stores), whose results are bit-compatible with the historical
    per-entry {!Featvec.cosine} scan.

    The store's dimension is fixed by the first vector added (or by
    [?dim]); a vector of any other dimension is {e quarantined} — counted
    and dropped, never silently truncated and never a crash — which is
    what keeps a store coherent once vectors persist across featurization
    versions. *)

type 'a t

val create : ?dim:int -> unit -> 'a t
(** [dim] fixes the dimension up front; otherwise the first {!add} does. *)

val add : 'a t -> float array -> 'a -> unit
(** Append under the next id. A vector whose dimension disagrees with the
    store's is quarantined (see {!quarantined}) and the store is
    unchanged. *)

val size : 'a t -> int

val quarantined : 'a t -> int
(** Entries refused for dimension mismatch since [create]. *)

val dim : 'a t -> int option
(** [None] until the first successful {!add} (or [?dim]). *)

val entries : 'a t -> (int * float array * 'a) list
(** All live entries as [(id, vector, payload)], id ascending. *)

val query : ?domains:int -> 'a t -> float array -> k:int -> (float * 'a) list
(** Top-[k] entries by cosine similarity, best first; ties break toward
    the earlier insertion. [domains] parallelizes the exact scan (results
    byte-identical to sequential). *)

val query_ids : ?domains:int -> 'a t -> float array -> k:int -> (float * int * 'a) list
(** {!query} with each hit's id. *)

val query_above : 'a t -> float array -> threshold:float -> (float * 'a) list
(** All entries whose similarity exceeds [threshold], best first, ties
    insertion-stable. Always a full scan: a threshold admits arbitrarily
    many hits, so there is nothing for an index to prune. *)

val scanned_last : 'a t -> int
(** Rows the most recent query actually scored — [size] for an exact
    scan, fewer when the bucketed index pruned. Feeds the knowledge
    base's size-dependent simulated-cost model. *)

(** The abstract-reasoning agent's knowledge base.

    Entries pair an error-prone AST-sketch vector with repair advice: the
    recommended fix class and a textual hint. Retrieval is similarity search
    over pruned-AST vectors ({!Featvec}); hits contribute a prompt section
    (raising prompt quality) and a perceived-quality bias toward the
    recommended fix class. Querying and learning both charge simulated time,
    which reproduces the paper's observation that the KB costs 2-4x overhead
    (Fig. 7, Table I's "knowledge" column).

    A knowledge base is either {e in-memory} ({!create}: private to the
    session, seeded by {!seed_default}) or {e persistent} ({!open_dir}: a
    {!Segment} store on disk, shared across campaigns and serve tenants).
    A persistent KB is {e frozen at open}: queries see the snapshot loaded
    from disk for the whole session — so seeded campaigns stay
    deterministic however many learns happen meanwhile — while {!learn}
    appends durably for {e future} sessions to retrieve. The handle itself
    stays Marshal-safe (sessions are snapshotted with [Marshal]): file
    descriptors and locks live in a process-global registry keyed by the
    store directory, never inside [t]. *)

type entry = {
  category : Miri.Diag.ub_kind;
  advice : string;
  recommended : Repairs.Rule.fix_kind;
}

type t

val create : ?query_cost:float -> clock:Rb_util.Simclock.t -> unit -> t
(** An in-memory KB. [query_cost] is seconds charged per lookup (default
    3.0, plus a per-row scan cost) — the paper's Fig. 7 observes that the
    knowledge base buys accuracy at 2-4x overhead growing with its size. *)

val open_dir :
  ?query_cost:float ->
  ?readonly:bool ->
  dir:string ->
  clock:Rb_util.Simclock.t ->
  unit ->
  (t, string) result
(** Open the persistent KB at [dir]. A missing or empty store is created
    and seeded with the {!seed_default} entries when writable ([readonly]
    defaults to [false]); read-only opens never write, skip the scrub, and
    fail if the directory does not exist. Entries whose vectors disagree
    with this build's {!Featvec} stamp are quarantined by the segment
    store, not loaded and not a crash. *)

val seed_default : t -> unit
(** Install the built-in per-category expertise entries (in-memory KBs;
    persistent stores are seeded once at creation by {!open_dir}). *)

val learn : t -> float array -> entry -> unit
(** Add an entry under a sketch vector (used by S3 self-learning).
    In-memory KBs retrieve it immediately; persistent KBs append it
    durably for future sessions (the open snapshot is frozen) and drop it
    silently when read-only. *)

val size : t -> int
(** Entries visible to {!query} (the frozen snapshot, for persistent). *)

val quarantined : t -> int
(** Entries refused for a dimension/version mismatch. *)

val persistent_dir : t -> string option
(** The backing store directory, when {!open_dir} made this KB. *)

val max_hits : int
(** Queries return at most this many hits (8). *)

val query : t -> float array -> (float * entry) list
(** The best [max_hits] matches above similarity 0.35, best first; equal
    scores tie-break toward the earlier entry. Charges simulated time
    proportional to the rows actually scored — a bucketed index over a
    large store prunes most rows, so the cost grows sublinearly where the
    historical full scan grew linearly. *)

val hints_text : (float * entry) list -> string
(** Render hits as a prompt section. *)

val kind_bias : (float * entry) list -> (string * float) list
(** Perceived-quality bias per fix-class, derived from hit similarity.
    The list is canonically ordered (declaration order of
    {!Repairs.Rule.fix_kind}, zero-contribution classes dropped), so the
    bias a downstream agent folds over never depends on which hit happened
    to arrive last. *)

(** {2 Entry codec}

    The JSON payload stored per segment record; exposed for the [kb-*]
    CLI tools and tests. *)

val entry_to_json : entry -> Rb_util.Json.t
val entry_of_json : Rb_util.Json.t -> entry option

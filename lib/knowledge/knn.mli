(** k-nearest-neighbour retrieval kernel over packed feature vectors.

    Vectors live in one flat [floatarray] (row-major, fixed dimension) so a
    scan walks contiguous memory instead of chasing per-entry boxed arrays.
    Two search strategies share one scoring loop and one total result
    order — cosine score descending, then row (insertion order) ascending:

    - {b exact}: score every row. The scoring pass can be chunked across
      OCaml domains; chunks write disjoint slices of one score array and
      selection runs single-threaded afterwards, so the parallel result is
      byte-identical to the sequential one.
    - {b indexed}: an inverted index buckets rows by their dominant
      component (for {!Featvec} vectors with a category, that is exactly
      the category one-hot block), with a per-bucket component-wise
      magnitude envelope. Buckets are visited in decreasing upper-bound
      order and the scan stops as soon as the next bucket's bound cannot
      beat the current k-th score — a safe (slightly inflated) bound, so
      indexed results are {e exactly} the exact scan's results, just
      cheaper once one bucket dominates.

    Scores are computed with the same operation order as
    {!Featvec.cosine}, so retrieval is bit-compatible with the historical
    per-pair scan. *)

type t

val create : dim:int -> t
(** Empty store for [dim]-component vectors. *)

val dim : t -> int
val size : t -> int

val add : t -> float array -> int
(** Append a row; returns its row number (dense, monotonic from 0).
    Invalidate any built index. @raise Invalid_argument on a vector whose
    length is not [dim] — callers quarantine before adding. *)

val get : t -> int -> float array
(** Copy of row [i]'s vector. *)

type result = {
  hits : (float * int) list;
      (** (score, row), score descending then row ascending *)
  scanned : int;  (** rows actually scored — the work the query did *)
}

val search_exact : ?domains:int -> t -> float array -> k:int -> result
(** Top-[k] by full scan. [domains] > 1 chunks the scoring pass across
    that many OCaml domains (results byte-identical to [domains = 1]). *)

val search_indexed : t -> float array -> k:int -> result
(** Top-[k] through the bucketed index (built lazily, kept until the next
    {!add}). Hits are identical to {!search_exact}'s; [scanned] is the
    number of rows the bound could not prune. *)

val indexed_threshold : int
(** Store size at which {!search} switches to the bucketed index (10^5 —
    below it the flat scan's locality wins). *)

val search : ?domains:int -> ?threshold:int -> t -> float array -> k:int -> result
(** {!search_exact} below [threshold] (default {!indexed_threshold}) rows,
    {!search_indexed} at or above it. *)

val scores : ?domains:int -> t -> float array -> floatarray
(** All scores in row order (the exact scoring pass without selection);
    used for threshold-style queries that must consider every row. *)

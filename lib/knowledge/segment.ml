(* Persistent append-only segment store. See segment.mli for the layout;
   the crash-safety argument, in one place:

   - tail appends are single framed writes followed by fsync. A crash can
     only tear the final frame; the frame header carries length + CRC-32,
     so recovery keeps exactly the whole-frame prefix.
   - sealing writes the new segment via Fsfile.write_checked (tmp, fsync,
     atomic rename, directory fsync) BEFORE removing tail.log. A crash
     between the two leaves both; load dedupes by id, first wins.
   - compaction writes the merged segment BEFORE deleting its inputs;
     same dedupe argument.
   - nothing ever rewrites bytes in place, so damage is always confined
     to a classifiable unit (one frame, one file) and quarantine can
     preserve it byte-for-byte. *)

module Json = Rb_util.Json
module Fsfile = Rb_util.Fsfile
module Crc32 = Rb_util.Crc32

type record = {
  id : int;
  fv : int;
  vec : float array;
  payload : Json.t;
}

type load_report = {
  records : record list;
  segments : int;
  tail_records : int;
  healed_tail_bytes : int;
  corrupt_segments : int;
  mismatched : int;
  duplicates : int;
}

let meta_name = "META"
let tail_name = "tail.log"
let lock_name = "LOCK"
let frame_magic = "%RBR1"

let seg_name i = Printf.sprintf "seg-%08d.seg" i

let seg_index name =
  if String.length name = 16
     && String.sub name 0 4 = "seg-"
     && Filename.check_suffix name ".seg"
  then int_of_string_opt (String.sub name 4 8)
  else None

(* -- record codec ------------------------------------------------------- *)

let record_to_json r =
  Json.Obj
    [ ("id", Json.Num (float_of_int r.id));
      ("fv", Json.Num (float_of_int r.fv));
      ("vec", Json.List (Array.to_list (Array.map (fun x -> Json.Num x) r.vec)));
      ("p", r.payload) ]

let record_to_string r = Json.to_string (record_to_json r)

let record_of_json j =
  match
    ( Option.bind (Json.member "id" j) Json.to_int,
      Option.bind (Json.member "fv" j) Json.to_int,
      Option.bind (Json.member "vec" j) Json.to_list,
      Json.member "p" j )
  with
  | Some id, Some fv, Some vec, Some payload ->
    let comps = List.map Json.to_float vec in
    if List.mem None comps then None
    else
      Some
        { id; fv;
          vec = Array.of_list (List.filter_map Fun.id comps);
          payload }
  | _ -> None

let record_of_string s =
  match Json.parse s with Ok j -> record_of_json j | Error _ -> None

(* -- META --------------------------------------------------------------- *)

let meta_to_string ~dim ~fv =
  Json.to_string
    (Json.Obj
       [ ("magic", Json.Str "rbkb");
         ("dim", Json.Num (float_of_int dim));
         ("fv", Json.Num (float_of_int fv)) ])

let read_meta dir =
  match Fsfile.read_checked (Filename.concat dir meta_name) with
  | Fsfile.Missing -> Ok None
  | c -> (
    match Fsfile.checked_payload c with
    | None -> Error "META is damaged"
    | Some s -> (
      match Json.parse s with
      | Error e -> Error (Printf.sprintf "META does not parse: %s" e)
      | Ok j -> (
        match
          ( Option.bind (Json.member "magic" j) Json.to_str,
            Option.bind (Json.member "dim" j) Json.to_int,
            Option.bind (Json.member "fv" j) Json.to_int )
        with
        | Some "rbkb", Some dim, Some fv -> Ok (Some (dim, fv))
        | _ -> Error "META has the wrong shape")))

(* -- tail framing -------------------------------------------------------- *)

let frame payload =
  Printf.sprintf "%s %d %s\n%s\n" frame_magic (String.length payload)
    (Crc32.to_hex (Crc32.string payload))
    payload

(* Parse the whole-frame prefix of [s]; returns the payloads in order and
   the byte length of the prefix that verified. *)
let parse_frames s =
  let n = String.length s in
  let payloads = ref [] in
  let pos = ref 0 in
  let good = ref 0 in
  (try
     while !pos < n do
       let nl = String.index_from s !pos '\n' in
       let header = String.sub s !pos (nl - !pos) in
       (match String.split_on_char ' ' header with
       | [ magic; len_s; crc_s ] when magic = frame_magic -> (
         match (int_of_string_opt len_s, Crc32.of_hex crc_s) with
         | Some len, Some crc when len >= 0 && nl + 1 + len + 1 <= n ->
           let payload = String.sub s (nl + 1) len in
           if s.[nl + 1 + len] <> '\n' then raise Exit;
           if Crc32.string payload <> crc then raise Exit;
           payloads := payload :: !payloads;
           pos := nl + 1 + len + 1;
           good := !pos
         | _ -> raise Exit)
       | _ -> raise Exit)
     done
   with Exit | Not_found -> ());
  (List.rev !payloads, !good)

(* -- load ---------------------------------------------------------------- *)

let list_segments dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun n -> Option.map (fun i -> (i, n)) (seg_index n))
    |> List.sort compare

let quarantine_dir dir = Filename.concat dir "quarantined"

let quarantine_segment ~dir name =
  let qdir = Filename.concat (quarantine_dir dir) "corrupt" in
  Fsfile.mkdir_p qdir;
  (try Sys.rename (Filename.concat dir name) (Filename.concat qdir name)
   with Sys_error _ -> ());
  Fsfile.fsync_dir dir

let quarantine_records ~dir lines =
  if lines <> [] then begin
    Fsfile.mkdir_p (quarantine_dir dir);
    let path = Filename.concat (quarantine_dir dir) "records.jsonl" in
    let existing = Option.value (Fsfile.read path) ~default:"" in
    Fsfile.write_atomic path
      (existing ^ String.concat "" (List.map (fun l -> l ^ "\n") lines))
  end

type scan = {
  sc_records : record list;       (* in discovery order *)
  sc_segments : int;
  sc_tail_records : int;
  sc_healed_bytes : int;
  sc_corrupt : string list;       (* damaged segment file names *)
  sc_bad : string list;           (* mismatched record lines (raw JSON) *)
  sc_tail_good : int;             (* verified tail prefix length, bytes *)
}

let scan ~dim ~fv dir =
  let acc = ref [] and bad = ref [] and corrupt = ref [] in
  let classify_record line =
    match record_of_string line with
    | Some r when Array.length r.vec = dim && r.fv = fv -> acc := r :: !acc
    | Some _ | None -> bad := line :: !bad
  in
  let seg_files = list_segments dir in
  let live_segs = ref 0 in
  List.iter
    (fun (_, name) ->
      match Fsfile.read_checked (Filename.concat dir name) with
      | Fsfile.Intact payload | Fsfile.Legacy payload | Fsfile.Healed payload ->
        incr live_segs;
        String.split_on_char '\n' payload
        |> List.iter (fun line -> if String.trim line <> "" then classify_record line)
      | Fsfile.Torn | Fsfile.Corrupt _ -> corrupt := name :: !corrupt
      | Fsfile.Missing -> ())
    seg_files;
  let tail_payloads, tail_good, tail_len =
    match Fsfile.read (Filename.concat dir tail_name) with
    | None -> ([], 0, 0)
    | Some s ->
      let ps, good = parse_frames s in
      (ps, good, String.length s)
  in
  List.iter classify_record tail_payloads;
  { sc_records = List.rev !acc;
    sc_segments = !live_segs;
    sc_tail_records = List.length tail_payloads;
    sc_healed_bytes = tail_len - tail_good;
    sc_corrupt = List.rev !corrupt;
    sc_bad = List.rev !bad;
    sc_tail_good = tail_good }

(* id-ascending, first occurrence of each id wins (sealing/compaction
   crash windows legitimately leave the same id in two files) *)
let dedupe records =
  let sorted = List.stable_sort (fun a b -> compare a.id b.id) records in
  let rec go dropped acc = function
    | [] -> (List.rev acc, dropped)
    | r :: rest -> (
      match acc with
      | prev :: _ when prev.id = r.id -> go (dropped + 1) acc rest
      | _ -> go dropped (r :: acc) rest)
  in
  go 0 [] sorted

let resolve_expect ~dir expect =
  match (read_meta dir, expect) with
  | Error e, _ -> Error e
  | Ok (Some (dim, fv)), Some (edim, efv) when (dim, fv) <> (edim, efv) ->
    Error
      (Printf.sprintf
         "store is stamped dim=%d fv=%d but this build expects dim=%d fv=%d"
         dim fv edim efv)
  | Ok (Some stamp), _ -> Ok stamp
  | Ok None, Some stamp -> Ok stamp
  | Ok None, None -> Error "store has no META and no expected stamp was given"

let report_of_scan sc =
  let records, duplicates = dedupe sc.sc_records in
  { records;
    segments = sc.sc_segments;
    tail_records = sc.sc_tail_records;
    healed_tail_bytes = sc.sc_healed_bytes;
    corrupt_segments = List.length sc.sc_corrupt;
    mismatched = List.length sc.sc_bad;
    duplicates }

let load ?expect dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "no store directory at %s" dir)
  else
    match resolve_expect ~dir expect with
    | Error e -> Error e
    | Ok (dim, fv) -> Ok (report_of_scan (scan ~dim ~fv dir))

(* Fixing pass: truncate the torn tail, set damaged segments aside,
   persist mismatched records into quarantine. Requires write access. *)
let scrub ~dim ~fv dir =
  let sc = scan ~dim ~fv dir in
  if sc.sc_healed_bytes > 0 then begin
    (try Unix.truncate (Filename.concat dir tail_name) sc.sc_tail_good
     with Unix.Unix_error _ -> ());
    Fsfile.fsync_dir dir
  end;
  List.iter (fun name -> quarantine_segment ~dir name) sc.sc_corrupt;
  quarantine_records ~dir sc.sc_bad;
  report_of_scan sc

(* -- writer -------------------------------------------------------------- *)

type writer = {
  dir : string;
  dim : int;
  fv : int;
  seal_every : int;
  compact_at : int;
  lock_fd : Unix.file_descr;
  mutable live_rev : record list;   (* every live record, newest first *)
  mutable tail_rev : record list;   (* records currently in tail.log *)
  mutable tail_fd : Unix.file_descr option;
  mutable next_id : int;
  mutable closed : bool;
}

let take_lock dir =
  let path = Filename.concat dir lock_name in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () ->
    (try
       ignore (Unix.ftruncate fd 0);
       let pid = string_of_int (Unix.getpid ()) ^ "\n" in
       ignore (Unix.write_substring fd pid 0 (String.length pid))
     with Unix.Unix_error _ -> ());
    Ok fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
    Unix.close fd;
    Error (Printf.sprintf "another writer holds %s" path)

let open_writer ?expect ?(seal_every = 256) ?(compact_at = 8) ~dir () =
  Fsfile.mkdir_p dir;
  match resolve_expect ~dir expect with
  | Error e -> Error e
  | Ok (dim, fv) -> (
    let meta_path = Filename.concat dir meta_name in
    if Fsfile.read_checked meta_path = Fsfile.Missing then
      Fsfile.write_checked meta_path (meta_to_string ~dim ~fv);
    match take_lock dir with
    | Error e -> Error e
    | Ok lock_fd ->
      let report = scrub ~dim ~fv dir in
      (* never reuse an id, even a quarantined record's: ids are forever *)
      let max_seen =
        List.fold_left (fun m r -> max m r.id) (-1) report.records
      in
      let tail_ids =
        match Fsfile.read (Filename.concat dir tail_name) with
        | None -> []
        | Some s ->
          fst (parse_frames s) |> List.filter_map record_of_string
          |> List.map (fun r -> r.id)
      in
      let w =
        { dir; dim; fv; seal_every = max 1 seal_every;
          compact_at = max 2 compact_at; lock_fd;
          live_rev = List.rev report.records;
          tail_rev =
            List.rev
              (List.filter (fun r -> List.mem r.id tail_ids) report.records);
          tail_fd = None;
          next_id = max_seen + 1;
          closed = false }
      in
      Ok (w, report))

let records w = List.rev w.live_rev
let next_id w = w.next_id

let live_segment_count w = List.length (list_segments w.dir)

let close_tail_fd w =
  match w.tail_fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    w.tail_fd <- None

let seal w =
  if w.tail_rev <> [] then begin
    let idx =
      1 + List.fold_left (fun m (i, _) -> max m i) 0 (list_segments w.dir)
    in
    let body =
      String.concat ""
        (List.rev_map (fun r -> record_to_string r ^ "\n") w.tail_rev)
    in
    Fsfile.write_checked (Filename.concat w.dir (seg_name idx)) body;
    (* the segment is durable; only now may the tail go *)
    close_tail_fd w;
    Fsfile.remove_if_exists (Filename.concat w.dir tail_name);
    Fsfile.fsync_dir w.dir;
    w.tail_rev <- []
  end

let compact w =
  seal w;
  let segs = list_segments w.dir in
  if List.length segs >= 2 then begin
    let idx = 1 + List.fold_left (fun m (i, _) -> max m i) 0 segs in
    let body =
      String.concat ""
        (List.rev_map (fun r -> record_to_string r ^ "\n") w.live_rev)
    in
    Fsfile.write_checked (Filename.concat w.dir (seg_name idx)) body;
    (* merged segment durable first; deleting inputs can now crash at any
       point without losing a record (dedupe by id covers the overlap) *)
    List.iter
      (fun (_, name) -> Fsfile.remove_if_exists (Filename.concat w.dir name))
      segs;
    Fsfile.fsync_dir w.dir
  end

let append w ~vec ~payload =
  if w.closed then Error "writer is closed"
  else if Array.length vec <> w.dim then begin
    quarantine_records ~dir:w.dir
      [ record_to_string { id = w.next_id; fv = w.fv; vec; payload } ];
    Error
      (Printf.sprintf "vector has %d components, store is stamped dim=%d"
         (Array.length vec) w.dim)
  end
  else begin
    let r = { id = w.next_id; fv = w.fv; vec; payload } in
    let fd =
      match w.tail_fd with
      | Some fd -> fd
      | None ->
        let fd =
          Unix.openfile
            (Filename.concat w.dir tail_name)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
            0o644
        in
        w.tail_fd <- Some fd;
        fd
    in
    let bytes = frame (record_to_string r) in
    let n = Unix.write_substring fd bytes 0 (String.length bytes) in
    if n <> String.length bytes then Error "short write appending record"
    else begin
      Unix.fsync fd;
      w.next_id <- r.id + 1;
      w.live_rev <- r :: w.live_rev;
      w.tail_rev <- r :: w.tail_rev;
      if List.length w.tail_rev >= w.seal_every then seal w;
      if live_segment_count w >= w.compact_at then compact w;
      Ok r.id
    end
  end

let close w =
  if not w.closed then begin
    seal w;
    close_tail_fd w;
    (try Unix.close w.lock_fd with Unix.Unix_error _ -> ());
    w.closed <- true
  end

let fsck ?(fix = false) ?expect dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "no store directory at %s" dir)
  else if not fix then load ?expect dir
  else
    match resolve_expect ~dir expect with
    | Error e -> Error e
    | Ok (dim, fv) -> (
      match take_lock dir with
      | Error e -> Error e
      | Ok fd ->
        let report = scrub ~dim ~fv dir in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Ok report)

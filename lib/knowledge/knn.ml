(* Flat-array k-NN with an exact chunked-parallel scan and an exactly
   equivalent bucketed (inverted) index for large stores. See knn.mli for
   the contract; the invariants that matter:

   - scoring reproduces Featvec.cosine bit-for-bit (same accumulation
     order, same final expression), so retrieval results are identical to
     the historical per-entry scan whatever the strategy;
   - the result order (score desc, row asc) is total, making ranking
     insertion-stable under ties;
   - the index prunes with an upper bound inflated by a relative margin
     that dwarfs float-rounding drift, so pruning can never drop a row the
     exact scan would have returned. *)

type index = {
  buckets : int array array;     (* bucket -> member rows, ascending *)
  envelopes : floatarray array;  (* bucket -> component-wise max of |v̂_i| *)
}

type t = {
  dim : int;
  mutable n : int;
  mutable vecs : floatarray;     (* capacity * dim, row-major *)
  mutable sqnorms : floatarray;  (* per row: sum of squares, i ascending *)
  mutable index : index option;  (* lazily built; dropped on add *)
}

let create ~dim =
  if dim <= 0 then invalid_arg "Knn.create: dim must be positive";
  { dim; n = 0; vecs = Float.Array.create 0; sqnorms = Float.Array.create 0;
    index = None }

let dim t = t.dim
let size t = t.n

let ensure_capacity t =
  let cap = Float.Array.length t.vecs / t.dim in
  if t.n >= cap then begin
    let cap' = max 16 (2 * max 1 cap) in
    let vecs' = Float.Array.make (cap' * t.dim) 0.0 in
    Float.Array.blit t.vecs 0 vecs' 0 (t.n * t.dim);
    t.vecs <- vecs';
    let sq' = Float.Array.make cap' 0.0 in
    Float.Array.blit t.sqnorms 0 sq' 0 t.n;
    t.sqnorms <- sq'
  end

let add t vec =
  if Array.length vec <> t.dim then
    invalid_arg
      (Printf.sprintf "Knn.add: vector has %d components, store holds %d"
         (Array.length vec) t.dim);
  ensure_capacity t;
  let row = t.n in
  let base = row * t.dim in
  let sq = ref 0.0 in
  for i = 0 to t.dim - 1 do
    Float.Array.set t.vecs (base + i) vec.(i);
    sq := !sq +. (vec.(i) *. vec.(i))
  done;
  Float.Array.set t.sqnorms row !sq;
  t.n <- row + 1;
  t.index <- None;
  row

let get t row =
  if row < 0 || row >= t.n then invalid_arg "Knn.get: row out of range";
  Array.init t.dim (fun i -> Float.Array.get t.vecs ((row * t.dim) + i))

(* -- scoring ----------------------------------------------------------- *)

let query_sqnorm t q =
  if Array.length q <> t.dim then
    invalid_arg
      (Printf.sprintf "Knn: query has %d components, store holds %d"
         (Array.length q) t.dim);
  let na = ref 0.0 in
  for i = 0 to t.dim - 1 do
    na := !na +. (q.(i) *. q.(i))
  done;
  !na

(* One row's cosine against the query, given the query's precomputed square
   norm. Bit-identical to Featvec.cosine: dot and both norms accumulate in
   component order and combine as dot / (sqrt na * sqrt nb). *)
let score_row t q na row =
  let nb = Float.Array.get t.sqnorms row in
  if na = 0.0 || nb = 0.0 then 0.0
  else begin
    let base = row * t.dim in
    let dot = ref 0.0 in
    for i = 0 to t.dim - 1 do
      dot := !dot +. (q.(i) *. Float.Array.get t.vecs (base + i))
    done;
    !dot /. (sqrt na *. sqrt nb)
  end

let score_range t q na out lo hi =
  for row = lo to hi - 1 do
    Float.Array.set out row (score_row t q na row)
  done

let scores ?(domains = 1) t q =
  let na = query_sqnorm t q in
  let out = Float.Array.make t.n 0.0 in
  let d = min (max 1 domains) (max 1 t.n) in
  (* below this the spawn cost swamps the scan; identical results either
     way, so the cutoff is pure performance policy *)
  if d > 1 && t.n >= 4096 then begin
    let chunk = (t.n + d - 1) / d in
    let workers =
      List.init (d - 1) (fun i ->
          let lo = (i + 1) * chunk in
          let hi = min t.n (lo + chunk) in
          Domain.spawn (fun () -> score_range t q na out lo (max lo hi)))
    in
    score_range t q na out 0 (min chunk t.n);
    List.iter Domain.join workers
  end
  else score_range t q na out 0 t.n;
  out

(* -- top-k selection --------------------------------------------------- *)

(* (score desc, row asc) is the one total order every path shares. *)
let better s1 r1 s2 r2 = s1 > s2 || (s1 = s2 && r1 < r2)

type heap = {
  k : int;
  mutable m : int;
  hs : float array;  (* insertion-sorted best-first prefix of length m *)
  hr : int array;
}

let heap_create k = { k; m = 0; hs = Array.make (max 1 k) 0.0; hr = Array.make (max 1 k) 0 }

let heap_offer h s r =
  if h.k > 0 && (h.m < h.k || better s r h.hs.(h.m - 1) h.hr.(h.m - 1)) then begin
    let pos = ref (min h.m (h.k - 1)) in
    while !pos > 0 && better s r h.hs.(!pos - 1) h.hr.(!pos - 1) do
      h.hs.(!pos) <- h.hs.(!pos - 1);
      h.hr.(!pos) <- h.hr.(!pos - 1);
      decr pos
    done;
    h.hs.(!pos) <- s;
    h.hr.(!pos) <- r;
    if h.m < h.k then h.m <- h.m + 1
  end

let heap_kth_score h = if h.m < h.k then neg_infinity else h.hs.(h.m - 1)

let heap_hits h = List.init h.m (fun i -> (h.hs.(i), h.hr.(i)))

type result = { hits : (float * int) list; scanned : int }

let search_exact ?domains t q ~k =
  if k <= 0 || t.n = 0 then { hits = []; scanned = 0 }
  else begin
    let sc = scores ?domains t q in
    let h = heap_create (min k t.n) in
    for row = 0 to t.n - 1 do
      heap_offer h (Float.Array.get sc row) row
    done;
    { hits = heap_hits h; scanned = t.n }
  end

(* -- bucketed index ----------------------------------------------------- *)

(* A row's bucket is its dominant component (first argmax of |v_i|); rows
   that are all zeros go to bucket [dim]. For Featvec vectors carrying a
   category this is exactly the category one-hot slot — the category
   signal (|2.0| before normalization) always beats any hashed-block
   component — so the index degenerates to a per-category inverted index
   without knowing anything about Featvec's layout. *)
let bucket_of t row =
  let base = row * t.dim in
  let best = ref (-1) and best_v = ref 0.0 in
  for i = 0 to t.dim - 1 do
    let v = Float.abs (Float.Array.get t.vecs (base + i)) in
    if v > !best_v then begin
      best := i;
      best_v := v
    end
  done;
  if !best < 0 then t.dim else !best

let build_index t =
  let nb = t.dim + 1 in
  let counts = Array.make nb 0 in
  let assignment = Array.init t.n (fun row -> bucket_of t row) in
  Array.iter (fun b -> counts.(b) <- counts.(b) + 1) assignment;
  let buckets = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make nb 0 in
  Array.iteri
    (fun row b ->
      buckets.(b).(fill.(b)) <- row;
      fill.(b) <- fill.(b) + 1)
    assignment;
  (* component-wise envelope of the *unit* vectors per bucket: an upper
     bound for dot(q̂, v̂) over the bucket is sum_i |q̂_i| * envelope_i *)
  let envelopes =
    Array.map
      (fun rows ->
        let env = Float.Array.make t.dim 0.0 in
        Array.iter
          (fun row ->
            let nbm = Float.Array.get t.sqnorms row in
            if nbm > 0.0 then begin
              let inv = 1.0 /. sqrt nbm in
              let base = row * t.dim in
              for i = 0 to t.dim - 1 do
                let v = Float.abs (Float.Array.get t.vecs (base + i)) *. inv in
                if v > Float.Array.get env i then Float.Array.set env i v
              done
            end)
          rows;
        env)
      buckets
  in
  let idx = { buckets; envelopes } in
  t.index <- Some idx;
  idx

let indexed_threshold = 100_000

(* Upper bound on dot(q̂, v̂) over any unit vector v̂ with |v̂_i| ≤ env_i:
   the exact maximum of the relaxation

     max Σ a_i x_i   s.t.  0 ≤ x_i ≤ env_i,  Σ x_i² ≤ 1,   a_i = |q̂_i|.

   (The naive Σ a_i env_i is useless at this dimensionality — across ~50
   components it sums past 1.0, above every cosine, and prunes nothing.)
   The KKT solution is x_i = min(env_i, a_i / λ) with λ chosen so the mass
   Σ x_i² hits 1; mass is decreasing in λ and mass(1) ≤ Σ a_i² = 1, so λ*
   lives in (0, 1] and bisection finds it. We evaluate at the ≥1-mass end
   of the bracket: value is decreasing in λ and λ_lo ≤ λ*, so the result
   is ≥ the true maximum — the bound stays safe whatever the bisection
   error. *)
let bucket_bound t q inv_qn env =
  let walk lam =
    let v = ref 0.0 and m = ref 0.0 in
    for i = 0 to t.dim - 1 do
      let a = Float.abs q.(i) *. inv_qn in
      let c = Float.Array.get env i in
      let x = if lam <= 0.0 then c else Float.min c (a /. lam) in
      v := !v +. (a *. x);
      m := !m +. (x *. x)
    done;
    (!v, !m)
  in
  let v0, m0 = walk 0.0 in
  if m0 <= 1.0 then v0
  else begin
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 40 do
      let mid = 0.5 *. (!lo +. !hi) in
      let _, m = walk mid in
      if m >= 1.0 then lo := mid else hi := mid
    done;
    fst (walk !lo)
  end

let search_indexed t q ~k =
  if k <= 0 || t.n = 0 then { hits = []; scanned = 0 }
  else begin
    let idx = match t.index with Some i -> i | None -> build_index t in
    let na = query_sqnorm t q in
    if na = 0.0 then
      (* every score is 0 by definition; ties resolve to the lowest rows,
         exactly what the exact scan returns *)
      { hits = List.init (min k t.n) (fun i -> (0.0, i)); scanned = 0 }
    else begin
      let inv_qn = 1.0 /. sqrt na in
      let nb = Array.length idx.buckets in
      (* per-bucket upper bound on any member's score, inflated by a
         relative margin far above the rounding drift of a dim-term sum so
         the bound is safe against float reassociation *)
      let bounds =
        Array.init nb (fun b ->
            if Array.length idx.buckets.(b) = 0 then neg_infinity
            else
              (bucket_bound t q inv_qn idx.envelopes.(b) *. (1.0 +. 1e-9))
              +. 1e-12)
      in
      let order = Array.init nb (fun b -> b) in
      Array.sort
        (fun a b ->
          match compare bounds.(b) bounds.(a) with 0 -> compare a b | c -> c)
        order;
      let h = heap_create (min k t.n) in
      let scanned = ref 0 in
      (try
         Array.iter
           (fun b ->
             let rows = idx.buckets.(b) in
             if Array.length rows > 0 then begin
               (* buckets come bound-descending: once one cannot beat the
                  k-th score, none after it can either *)
               if h.m >= h.k && bounds.(b) < heap_kth_score h then raise Exit;
               Array.iter
                 (fun row ->
                   incr scanned;
                   heap_offer h (score_row t q na row) row)
                 rows
             end)
           order
       with Exit -> ());
      { hits = heap_hits h; scanned = !scanned }
    end
  end

let search ?domains ?(threshold = indexed_threshold) t q ~k =
  if t.n >= threshold then search_indexed t q ~k
  else search_exact ?domains t q ~k

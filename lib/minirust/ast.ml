(* Abstract syntax of MiniRust.

   MiniRust is the Rust-syntax subset this reproduction uses in place of real
   Rust (see DESIGN.md). It is deliberately rich enough to express the five
   unsafe-operation classes the paper enumerates: dereferencing raw pointers,
   calling unsafe functions, accessing/modifying mutable statics, accessing
   union fields, and (via unsafe fns) unsafe trait surface. Threads, atomics,
   manual allocation, transmutes and unchecked indexing give the UB families
   of the paper's Table I something to happen in.

   Every expression and statement carries a unique node id. Repair agents
   address their edits by node id; [fresh_id] hands out ids for nodes created
   by edits. *)

type mutability = Imm | Mut

type int_width = I8 | I16 | I32 | I64 | Usize

type ty =
  | T_unit
  | T_bool
  | T_int of int_width
  | T_ref of mutability * ty
  | T_raw of mutability * ty
  | T_array of ty * int
  | T_tuple of ty list
  | T_fn of ty list * ty
  | T_union of string
  | T_handle  (** thread handle produced by [spawn] *)

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or
  | Bit_and | Bit_or | Bit_xor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

type expr = { eid : int; e : expr_kind }

and expr_kind =
  | E_unit
  | E_bool of bool
  | E_int of int64 * int_width
  | E_place of place                      (** read the current value of a place *)
  | E_unop of unop * expr
  | E_binop of binop * expr * expr
  | E_tuple of expr list
  | E_array of expr list
  | E_repeat of expr * int                (** [[e; n]] array literal *)
  | E_ref of mutability * place           (** [&p] / [&mut p] *)
  | E_raw_of of mutability * place        (** [&raw const p] / [&raw mut p] *)
  | E_call of string * expr list          (** named call, or fn-ptr variable call *)
  | E_call_ptr of expr * expr list        (** call through a fn-pointer expression *)
  | E_cast of expr * ty                   (** [e as T] *)
  | E_transmute of ty * expr              (** [transmute::<T>(e)] — unsafe *)
  | E_offset of expr * expr               (** [p.offset(n)] raw-ptr arithmetic — unsafe *)
  | E_alloc of expr * expr                (** [alloc(size, align)] returning [*mut i64-bytes] — unsafe *)
  | E_len of expr                         (** [a.len()] *)
  | E_input of expr                       (** [input(i)]: i-th probe input (i64) *)
  | E_atomic_load of expr                 (** [atomic_load(p)] on [*mut i64] — unsafe *)
  | E_atomic_add of expr * expr           (** [atomic_add(p, n)]: fetch-and-add, returns the old value — unsafe *)

and place =
  | P_var of string
  | P_deref of expr                       (** [*e]; unsafe when [e] is a raw pointer *)
  | P_index of place * expr               (** [a\[i\]] bounds-checked (panics) *)
  | P_index_unchecked of place * expr     (** [a.get_unchecked(i)] — unsafe, no check *)
  | P_field of place * int                (** tuple field [p.0] *)
  | P_union_field of place * string       (** union field access — unsafe (reads) *)

type stmt = { sid : int; s : stmt_kind }

and stmt_kind =
  | S_let of string * ty option * expr
  | S_assign of place * expr
  | S_expr of expr
  | S_if of expr * block * block
  | S_while of expr * block
  | S_block of block
  | S_unsafe of block
  | S_assert of expr * string
  | S_panic of string
  | S_return of expr option
  | S_print of expr
  | S_dealloc of expr * expr * expr       (** [dealloc(ptr, size, align)] — unsafe *)
  | S_spawn of string * string * expr list(** [let h = spawn f(args);] *)
  | S_join of expr                        (** [join(h)] *)
  | S_atomic_store of expr * expr         (** [atomic_store(p, v)] — unsafe *)

and block = stmt list

type fn_decl = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  fn_unsafe : bool;
  body : block;
}

type union_decl = { uname : string; ufields : (string * ty) list }

type static_decl = { sname : string; sty : ty; smut : bool; sinit : expr }

type program = {
  unions : union_decl list;
  statics : static_decl list;
  funcs : fn_decl list;
}

(* ------------------------------------------------------------------ *)
(* Node ids and constructors                                           *)

(* Node ids come from a domain-local counter: parallel campaign workers
   (lib/exec) each number their own ASTs without racing. [scoped_ids]
   renumbers from a fixed origin so that id-bearing strings (edit labels,
   repair traces) do not depend on how much parsing happened before — a
   repair produces byte-identical output whether it runs first, last, or on
   another domain. *)
let id_counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh_id () =
  let r = Domain.DLS.get id_counter in
  incr r;
  !r

let scoped_ids f =
  let r = Domain.DLS.get id_counter in
  let saved = !r in
  r := 0;
  (* restore to the high-water mark: ids handed out inside the scope must not
     be reissued to nodes created after it *)
  Fun.protect ~finally:(fun () -> r := max saved !r) f

(* Id-neutral scope for verification-only work (reference parses, analysis
   runs): the counter is restored exactly, so skipping the work — e.g. on a
   verification-cache hit — leaves later id-bearing labels unchanged. Only
   safe when no AST built inside outlives the scope. *)
let id_preserving f =
  let r = Domain.DLS.get id_counter in
  let saved = !r in
  Fun.protect ~finally:(fun () -> r := saved) f

let mk e = { eid = fresh_id (); e }
let mks s = { sid = fresh_id (); s }

(* Convenience constructors used by the dataset generators and by repair
   rules; they keep AST-building code readable. *)

let unit_e () = mk E_unit
let bool_e b = mk (E_bool b)
let int_e ?(w = I64) n = mk (E_int (Int64.of_int n, w))
let int64_e ?(w = I64) n = mk (E_int (n, w))
let var_e name = mk (E_place (P_var name))
let read_e p = mk (E_place p)
let unop_e op a = mk (E_unop (op, a))
let binop_e op a b = mk (E_binop (op, a, b))
let call_e f args = mk (E_call (f, args))
let cast_e e ty = mk (E_cast (e, ty))
let deref_e e = mk (E_place (P_deref e))
let ref_e m p = mk (E_ref (m, p))
let raw_of_e m p = mk (E_raw_of (m, p))
let offset_e p n = mk (E_offset (p, n))
let let_s name ?ty e = mks (S_let (name, ty, e))
let assign_s p e = mks (S_assign (p, e))
let expr_s e = mks (S_expr e)
let print_s e = mks (S_print e)
let unsafe_s b = mks (S_unsafe b)
let assert_s e msg = mks (S_assert (e, msg))
let return_s e = mks (S_return e)
let if_s c t f = mks (S_if (c, t, f))
let while_s c b = mks (S_while (c, b))

let lookup_fn program name =
  List.find_opt (fun f -> String.equal f.fname name) program.funcs

let lookup_union program name =
  List.find_opt (fun u -> String.equal u.uname name) program.unions

let lookup_static program name =
  List.find_opt (fun s -> String.equal s.sname name) program.statics

(* ------------------------------------------------------------------ *)
(* Structural equality ignoring node ids — used by tests and by the
   pipeline to detect fixed-point edits. *)

let rec equal_ty a b =
  match (a, b) with
  | T_unit, T_unit | T_bool, T_bool | T_handle, T_handle -> true
  | T_int w1, T_int w2 -> w1 = w2
  | T_ref (m1, t1), T_ref (m2, t2) | T_raw (m1, t1), T_raw (m2, t2) ->
    m1 = m2 && equal_ty t1 t2
  | T_array (t1, n1), T_array (t2, n2) -> n1 = n2 && equal_ty t1 t2
  | T_tuple l1, T_tuple l2 ->
    List.length l1 = List.length l2 && List.for_all2 equal_ty l1 l2
  | T_fn (a1, r1), T_fn (a2, r2) ->
    List.length a1 = List.length a2 && List.for_all2 equal_ty a1 a2 && equal_ty r1 r2
  | T_union u1, T_union u2 -> String.equal u1 u2
  | ( ( T_unit | T_bool | T_int _ | T_ref _ | T_raw _ | T_array _ | T_tuple _
      | T_fn _ | T_union _ | T_handle ),
      _ ) ->
    false

let rec equal_expr (a : expr) (b : expr) = equal_expr_kind a.e b.e

and equal_expr_kind a b =
  match (a, b) with
  | E_unit, E_unit -> true
  | E_bool x, E_bool y -> x = y
  | E_int (x, w1), E_int (y, w2) -> Int64.equal x y && w1 = w2
  | E_place p, E_place q -> equal_place p q
  | E_unop (o1, a1), E_unop (o2, a2) -> o1 = o2 && equal_expr a1 a2
  | E_binop (o1, a1, b1), E_binop (o2, a2, b2) ->
    o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | E_tuple l1, E_tuple l2 | E_array l1, E_array l2 ->
    List.length l1 = List.length l2 && List.for_all2 equal_expr l1 l2
  | E_repeat (e1, n1), E_repeat (e2, n2) -> n1 = n2 && equal_expr e1 e2
  | E_ref (m1, p1), E_ref (m2, p2) | E_raw_of (m1, p1), E_raw_of (m2, p2) ->
    m1 = m2 && equal_place p1 p2
  | E_call (f1, l1), E_call (f2, l2) ->
    String.equal f1 f2 && List.length l1 = List.length l2 && List.for_all2 equal_expr l1 l2
  | E_call_ptr (e1, l1), E_call_ptr (e2, l2) ->
    equal_expr e1 e2 && List.length l1 = List.length l2 && List.for_all2 equal_expr l1 l2
  | E_cast (e1, t1), E_cast (e2, t2) -> equal_expr e1 e2 && equal_ty t1 t2
  | E_transmute (t1, e1), E_transmute (t2, e2) -> equal_ty t1 t2 && equal_expr e1 e2
  | E_offset (a1, b1), E_offset (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | E_alloc (a1, b1), E_alloc (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | E_len e1, E_len e2 | E_input e1, E_input e2 | E_atomic_load e1, E_atomic_load e2 ->
    equal_expr e1 e2
  | E_atomic_add (a1, b1), E_atomic_add (a2, b2) -> equal_expr a1 a2 && equal_expr b1 b2
  | ( ( E_unit | E_bool _ | E_int _ | E_place _ | E_unop _ | E_binop _
      | E_tuple _ | E_array _ | E_repeat _ | E_ref _ | E_raw_of _ | E_call _
      | E_call_ptr _ | E_cast _ | E_transmute _ | E_offset _
      | E_alloc _ | E_len _ | E_input _ | E_atomic_load _ | E_atomic_add _ ),
      _ ) ->
    false

and equal_place a b =
  match (a, b) with
  | P_var x, P_var y -> String.equal x y
  | P_deref e1, P_deref e2 -> equal_expr e1 e2
  | P_index (p1, e1), P_index (p2, e2)
  | P_index_unchecked (p1, e1), P_index_unchecked (p2, e2) ->
    equal_place p1 p2 && equal_expr e1 e2
  | P_field (p1, i1), P_field (p2, i2) -> equal_place p1 p2 && i1 = i2
  | P_union_field (p1, f1), P_union_field (p2, f2) ->
    equal_place p1 p2 && String.equal f1 f2
  | ( ( P_var _ | P_deref _ | P_index _ | P_index_unchecked _ | P_field _
      | P_union_field _ ),
      _ ) ->
    false

let rec equal_stmt (a : stmt) (b : stmt) = equal_stmt_kind a.s b.s

and equal_stmt_kind a b =
  match (a, b) with
  | S_let (n1, t1, e1), S_let (n2, t2, e2) ->
    String.equal n1 n2 && Option.equal equal_ty t1 t2 && equal_expr e1 e2
  | S_assign (p1, e1), S_assign (p2, e2) -> equal_place p1 p2 && equal_expr e1 e2
  | S_expr e1, S_expr e2 | S_print e1, S_print e2 | S_join e1, S_join e2 ->
    equal_expr e1 e2
  | S_if (c1, t1, f1), S_if (c2, t2, f2) ->
    equal_expr c1 c2 && equal_block t1 t2 && equal_block f1 f2
  | S_while (c1, b1), S_while (c2, b2) -> equal_expr c1 c2 && equal_block b1 b2
  | S_block b1, S_block b2 | S_unsafe b1, S_unsafe b2 -> equal_block b1 b2
  | S_assert (e1, m1), S_assert (e2, m2) -> equal_expr e1 e2 && String.equal m1 m2
  | S_panic m1, S_panic m2 -> String.equal m1 m2
  | S_return e1, S_return e2 -> Option.equal equal_expr e1 e2
  | S_dealloc (a1, b1, c1), S_dealloc (a2, b2, c2) ->
    equal_expr a1 a2 && equal_expr b1 b2 && equal_expr c1 c2
  | S_spawn (h1, f1, l1), S_spawn (h2, f2, l2) ->
    String.equal h1 h2 && String.equal f1 f2
    && List.length l1 = List.length l2
    && List.for_all2 equal_expr l1 l2
  | S_atomic_store (p1, v1), S_atomic_store (p2, v2) ->
    equal_expr p1 p2 && equal_expr v1 v2
  | ( ( S_let _ | S_assign _ | S_expr _ | S_if _ | S_while _ | S_block _
      | S_unsafe _ | S_assert _ | S_panic _ | S_return _ | S_print _
      | S_dealloc _ | S_spawn _ | S_join _ | S_atomic_store _ ),
      _ ) ->
    false

and equal_block b1 b2 =
  List.length b1 = List.length b2 && List.for_all2 equal_stmt b1 b2

let equal_fn f g =
  String.equal f.fname g.fname
  && List.length f.params = List.length g.params
  && List.for_all2
       (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal_ty t1 t2)
       f.params g.params
  && equal_ty f.ret g.ret && f.fn_unsafe = g.fn_unsafe
  && equal_block f.body g.body

let equal_program p q =
  List.length p.funcs = List.length q.funcs
  && List.for_all2 equal_fn p.funcs q.funcs
  && List.length p.statics = List.length q.statics
  && List.for_all2
       (fun s1 s2 ->
         String.equal s1.sname s2.sname && equal_ty s1.sty s2.sty
         && s1.smut = s2.smut && equal_expr s1.sinit s2.sinit)
       p.statics q.statics
  && List.length p.unions = List.length q.unions
  && List.for_all2
       (fun u1 u2 ->
         String.equal u1.uname u2.uname
         && List.length u1.ufields = List.length u2.ufields
         && List.for_all2
              (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal_ty t1 t2)
              u1.ufields u2.ufields)
       p.unions q.unions

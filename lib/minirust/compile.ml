(* One-pass AST -> bytecode lowering.

   The compiler mirrors the runtime name-resolution rules of the
   tree-walker exactly, but at compile time:

   - locals are lexically scoped with shadowing; every [let] (and spawn
     handle) gets a fresh monotone frame slot, so an inner shadow is a
     different slot and resolution is a scope-stack walk here instead of a
     Hashtbl probe per access there;
   - a name that is not a local resolves to a static if one is visible
     (statics become visible in declaration order while the init sequence
     is compiled, and all are visible inside function bodies — matching the
     runtime's [Hashtbl.replace] timing), then to a function;
   - unresolved names compile to raising instructions that reproduce the
     tree-walker's [invalid_arg] errors verbatim, so even failure modes are
     identical.

   Evaluation order is preserved instruction-for-effect: operands compile
   left-to-right, [I_to_int] marks exactly the points where the evaluator
   coerced with [value_as_int], and statement boundaries ([I_stmt]) and
   while-iteration yields ([I_loop_head]) replicate the step accounting of
   the tree-walker, keeping step counts and scheduler interleavings — and
   therefore diagnostics — byte-identical. *)

open Bytecode

(* growable instruction buffer with backpatched jumps *)
type emitter = { mutable buf : instr array; mutable len : int }

let new_emitter () = { buf = Array.make 64 I_push_unit; len = 0 }

let emit em i =
  if em.len >= Array.length em.buf then begin
    let bigger = Array.make (2 * Array.length em.buf) I_push_unit in
    Array.blit em.buf 0 bigger 0 em.len;
    em.buf <- bigger
  end;
  em.buf.(em.len) <- i;
  em.len <- em.len + 1

let here em = em.len

(* emit a placeholder branch; returns its position for [patch] *)
let emit_hole em i =
  let pos = em.len in
  emit em i;
  pos

let patch em pos target =
  em.buf.(pos) <-
    (match em.buf.(pos) with
    | I_jump _ -> I_jump target
    | I_br_false _ -> I_br_false target
    | I_cmp_br_false (op, _) -> I_cmp_br_false (op, target)
    | I_sc_and _ -> I_sc_and target
    | I_sc_or _ -> I_sc_or target
    | _ -> invalid_arg "Compile.patch: not a branch")

let finish em = Array.sub em.buf 0 em.len

type fctx = {
  prog : Ast.program;
  info : Typecheck.info;
  fn_idx : (string, int) Hashtbl.t;       (* first declaration of each name *)
  fn_table : Ast.fn_decl array;
  statics_vis : (string, int) Hashtbl.t;  (* statics visible at this point *)
  em : emitter;
  mutable scopes : (string * int) list list;  (* innermost scope first *)
  mutable next_slot : int;
}

let lookup_slot fx name =
  let rec go = function
    | [] -> None
    | frame :: rest -> (
      match List.assoc_opt name frame with Some s -> Some s | None -> go rest)
  in
  go fx.scopes

let fresh_slot fx =
  let s = fx.next_slot in
  fx.next_slot <- s + 1;
  s

let bind_name fx name slot =
  match fx.scopes with
  | frame :: rest -> fx.scopes <- ((name, slot) :: frame) :: rest
  | [] -> invalid_arg "Compile: binding outside any scope"

let layout_of fx ty = (Layout.size_of fx.prog ty, Layout.align_of fx.prog ty)

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec compile_expr fx (e : Ast.expr) : unit =
  match e.Ast.e with
  | Ast.E_unit -> emit fx.em I_push_unit
  | Ast.E_bool b -> emit fx.em (I_push_bool b)
  | Ast.E_int (n, w) -> emit fx.em (I_push_int (n, w))
  | Ast.E_place p -> compile_place_read fx p
  | Ast.E_unop (op, a) ->
    compile_expr fx a;
    emit fx.em (I_unop op)
  | Ast.E_binop (Ast.And, a, b) ->
    compile_expr fx a;
    let hole = emit_hole fx.em (I_sc_and (-1)) in
    compile_expr fx b;
    patch fx.em hole (here fx.em)
  | Ast.E_binop (Ast.Or, a, b) ->
    compile_expr fx a;
    let hole = emit_hole fx.em (I_sc_or (-1)) in
    compile_expr fx b;
    patch fx.em hole (here fx.em)
  | Ast.E_binop (op, a, b) ->
    compile_expr fx a;
    compile_expr fx b;
    emit fx.em (I_binop op)
  | Ast.E_tuple es ->
    List.iter (compile_expr fx) es;
    emit fx.em (I_tuple (List.length es))
  | Ast.E_array es ->
    List.iter (compile_expr fx) es;
    emit fx.em (I_array (List.length es))
  | Ast.E_repeat (x, n) ->
    compile_expr fx x;
    emit fx.em (I_repeat n)
  | Ast.E_ref (m, p) ->
    compile_place fx p;
    emit fx.em (I_ref m)
  | Ast.E_raw_of (m, p) ->
    compile_place fx p;
    emit fx.em (I_raw_of m)
  | Ast.E_call (name, args) -> (
    (* name resolution: local fn-pointer first, then declared function;
       for an unknown name the arguments are never evaluated *)
    match lookup_slot fx name with
    | Some slot ->
      emit fx.em (I_load_local slot);
      List.iter (compile_expr fx) args;
      emit fx.em (I_call_value (List.length args))
    | None -> (
      match Hashtbl.find_opt fx.fn_idx name with
      | Some idx ->
        List.iter (compile_expr fx) args;
        let f = fx.fn_table.(idx) in
        if List.length args = List.length f.Ast.params then
          emit fx.em (I_call (idx, List.length args))
        else emit fx.em (I_call_arity (idx, List.length args))
      | None -> emit fx.em (I_call_unknown name)))
  | Ast.E_call_ptr (callee, args) ->
    compile_expr fx callee;
    List.iter (compile_expr fx) args;
    emit fx.em (I_call_value (List.length args))
  | Ast.E_cast (a, target) ->
    compile_expr fx a;
    emit fx.em (I_cast target)
  | Ast.E_transmute (target, a) ->
    compile_expr fx a;
    emit fx.em (I_transmute target)
  | Ast.E_offset (p, n) ->
    compile_expr fx p;
    compile_expr fx n;
    emit fx.em I_to_int;
    emit fx.em I_offset
  | Ast.E_alloc (size_e, align_e) ->
    compile_expr fx size_e;
    emit fx.em I_to_int;
    compile_expr fx align_e;
    emit fx.em I_to_int;
    emit fx.em I_alloc
  | Ast.E_len a -> (
    match a.Ast.e with
    | Ast.E_place p ->
      compile_place fx p;
      emit fx.em I_len_place
    | _ ->
      compile_expr fx a;
      emit fx.em I_len_value)
  | Ast.E_input i ->
    compile_expr fx i;
    emit fx.em I_to_int;
    emit fx.em I_input
  | Ast.E_atomic_load p ->
    compile_expr fx p;
    emit fx.em I_atomic_load
  | Ast.E_atomic_add (p, n) ->
    compile_expr fx p;
    compile_expr fx n;
    emit fx.em I_to_int;
    emit fx.em I_atomic_add

(* push a (pointer, type) place onto the place stack *)
and compile_place fx (p : Ast.place) : unit =
  match p with
  | Ast.P_var name -> (
    match lookup_slot fx name with
    | Some slot -> emit fx.em (I_place_local slot)
    | None -> (
      match Hashtbl.find_opt fx.statics_vis name with
      | Some k -> emit fx.em (I_place_static k)
      | None -> emit fx.em (I_place_unknown name)))
  | Ast.P_deref e ->
    compile_expr fx e;
    emit fx.em I_place_deref
  | Ast.P_index (base, idx) ->
    compile_place fx base;
    compile_expr fx idx;
    emit fx.em I_to_int;
    emit fx.em I_place_index
  | Ast.P_index_unchecked (base, idx) ->
    compile_place fx base;
    compile_expr fx idx;
    emit fx.em I_to_int;
    emit fx.em I_place_index_unchecked
  | Ast.P_field (base, i) ->
    compile_place fx base;
    emit fx.em (I_place_field i)
  | Ast.P_union_field (base, fld) ->
    compile_place fx base;
    emit fx.em (I_place_union_field fld)

and compile_place_read fx (p : Ast.place) : unit =
  match p with
  | Ast.P_var name -> (
    match lookup_slot fx name with
    | Some slot -> emit fx.em (I_load_local slot)
    | None -> (
      match Hashtbl.find_opt fx.statics_vis name with
      | Some k -> emit fx.em (I_load_static k)
      | None -> (
        (* a bare function name used as a value *)
        match Hashtbl.find_opt fx.fn_idx name with
        | Some idx ->
          let f = fx.fn_table.(idx) in
          emit fx.em
            (I_push_fn (name, Ast.T_fn (List.map snd f.Ast.params, f.Ast.ret)))
        | None -> emit fx.em (I_place_unknown name))))
  | Ast.P_deref { Ast.e = Ast.E_place (Ast.P_var name); _ }
    when lookup_slot fx name <> None -> (
    match lookup_slot fx name with
    | Some slot -> emit fx.em (I_load_deref_local slot)
    | None -> assert false)
  | _ ->
    compile_place fx p;
    emit fx.em I_place_read

(* ------------------------------------------------------------------ *)
(* Conditions: compile the expression, then branch-if-false to a hole.
   When the condition's final instruction is a plain binop we fuse it with
   the branch — safe unless some backpatched target points *at* that final
   instruction, which only happens when the right operand is itself a
   short-circuit whose join lands there. *)

and compile_cond_br fx (c : Ast.expr) : int =
  compile_expr fx c;
  let fusable =
    match c.Ast.e with
    | Ast.E_binop ((Ast.And | Ast.Or), _, _) -> false
    | Ast.E_binop (_, _, { Ast.e = Ast.E_binop ((Ast.And | Ast.Or), _, _); _ }) ->
      false
    | Ast.E_binop (_, _, _) -> true
    | _ -> false
  in
  if fusable then begin
    let pos = here fx.em - 1 in
    match fx.em.buf.(pos) with
    | I_binop op ->
      fx.em.buf.(pos) <- I_cmp_br_false (op, -1);
      pos
    | _ -> emit_hole fx.em (I_br_false (-1))
  end
  else emit_hole fx.em (I_br_false (-1))

(* ------------------------------------------------------------------ *)
(* Statements *)

and compile_stmt fx (stmt : Ast.stmt) : unit =
  emit fx.em (I_stmt stmt.Ast.sid);
  match stmt.Ast.s with
  | Ast.S_let (name, annot, e) -> (
    compile_expr fx e;
    let slot = fresh_slot fx in
    (match annot with
    | Some t ->
      let size, align = layout_of fx t in
      emit fx.em (I_let (slot, t, size, align))
    | None -> (
      match Typecheck.ty_of_expr fx.info e with
      | Some t ->
        let size, align = layout_of fx t in
        emit fx.em (I_let (slot, t, size, align))
      | None -> emit fx.em (I_let_dyn slot)));
    bind_name fx name slot)
  | Ast.S_assign (p, e) -> (
    (* x = x <op> const on a local fuses to a single read-modify-write *)
    match (p, e.Ast.e) with
    | ( Ast.P_var x,
        Ast.E_binop
          ( op,
            { Ast.e = Ast.E_place (Ast.P_var x2); _ },
            { Ast.e = Ast.E_int (k, kw); _ } ) )
      when op <> Ast.And && op <> Ast.Or
           && lookup_slot fx x <> None
           && lookup_slot fx x = lookup_slot fx x2 ->
      let slot = Option.get (lookup_slot fx x) in
      emit fx.em (I_local_binop (slot, op, k, kw))
    | _ -> (
      compile_expr fx e;
      match p with
      | Ast.P_var x when lookup_slot fx x <> None ->
        emit fx.em (I_store_local (Option.get (lookup_slot fx x)))
      | Ast.P_var x when Hashtbl.mem fx.statics_vis x ->
        emit fx.em (I_store_static (Hashtbl.find fx.statics_vis x))
      | Ast.P_var x -> emit fx.em (I_place_unknown x)
      | Ast.P_deref { Ast.e = Ast.E_place (Ast.P_var x); _ }
        when lookup_slot fx x <> None ->
        emit fx.em (I_store_deref_local (Option.get (lookup_slot fx x)))
      | _ ->
        compile_place fx p;
        emit fx.em I_assign))
  | Ast.S_expr e ->
    compile_expr fx e;
    emit fx.em I_pop
  | Ast.S_if (c, t, f) ->
    let cond_hole = compile_cond_br fx c in
    compile_block fx t;
    let end_hole = emit_hole fx.em (I_jump (-1)) in
    patch fx.em cond_hole (here fx.em);
    compile_block fx f;
    patch fx.em end_hole (here fx.em)
  | Ast.S_while (c, body) ->
    (* the statement's own [I_stmt] ran once; each iteration then pays one
       [I_loop_head] yield before re-evaluating the condition, exactly like
       the tree-walker's [loop] *)
    let lcond = here fx.em in
    emit fx.em I_loop_head;
    let cond_hole = compile_cond_br fx c in
    compile_block fx body;
    emit fx.em (I_jump lcond);
    patch fx.em cond_hole (here fx.em)
  | Ast.S_block b | Ast.S_unsafe b -> compile_block fx b
  | Ast.S_assert (e, msg) ->
    compile_expr fx e;
    emit fx.em (I_assert msg)
  | Ast.S_panic msg -> emit fx.em (I_panic msg)
  | Ast.S_return None -> emit fx.em I_ret_unit
  | Ast.S_return (Some e) ->
    compile_expr fx e;
    emit fx.em I_ret
  | Ast.S_print e ->
    compile_expr fx e;
    emit fx.em I_print
  | Ast.S_dealloc (pe, size_e, align_e) ->
    compile_expr fx pe;
    compile_expr fx size_e;
    emit fx.em I_to_int;
    compile_expr fx align_e;
    emit fx.em I_to_int;
    emit fx.em I_dealloc
  | Ast.S_spawn (handle, fname, args) -> (
    (* unknown spawn target fails before evaluating the arguments *)
    match Hashtbl.find_opt fx.fn_idx fname with
    | None -> emit fx.em (I_spawn_unknown fname)
    | Some idx ->
      List.iter (compile_expr fx) args;
      let slot = fresh_slot fx in
      emit fx.em (I_spawn (idx, List.length args, slot));
      bind_name fx handle slot)
  | Ast.S_join e ->
    compile_expr fx e;
    emit fx.em I_join
  | Ast.S_atomic_store (pe, ve) ->
    compile_expr fx pe;
    compile_expr fx ve;
    emit fx.em I_atomic_store

and compile_block fx (b : Ast.block) : unit =
  fx.scopes <- [] :: fx.scopes;
  emit fx.em I_push_scope;
  List.iter (compile_stmt fx) b;
  emit fx.em I_pop_scope;
  fx.scopes <- (match fx.scopes with [] -> [] | _ :: rest -> rest)

(* ------------------------------------------------------------------ *)
(* Declarations *)

let compile_fn ~prog ~info ~fn_idx ~fn_table ~statics_vis (f : Ast.fn_decl) :
    fn_code =
  let fx =
    { prog; info; fn_idx; fn_table; statics_vis; em = new_emitter ();
      scopes = [ List.mapi (fun i (pname, _) -> (pname, i)) f.Ast.params ];
      next_slot = List.length f.Ast.params }
  in
  compile_block fx f.Ast.body;
  emit fx.em I_fn_end;
  {
    fc_name = f.Ast.fname;
    fc_param_layout =
      Array.of_list
        (List.map
           (fun (_, pty) ->
             (pty, Layout.size_of prog pty, Layout.align_of prog pty))
           f.Ast.params);
    fc_ret = f.Ast.ret;
    fc_ret_unit = Ast.equal_ty f.Ast.ret Ast.T_unit;
    fc_nslots = fx.next_slot;
    fc_code = finish fx.em;
  }

let lower (prog : Ast.program) (info : Typecheck.info) : program_code =
  let fn_table = Array.of_list prog.Ast.funcs in
  let fn_idx = Hashtbl.create (Array.length fn_table) in
  Array.iteri
    (fun i (f : Ast.fn_decl) ->
      if not (Hashtbl.mem fn_idx f.Ast.fname) then Hashtbl.add fn_idx f.Ast.fname i)
    fn_table;
  let statics_vis = Hashtbl.create 8 in
  (* statics init: each becomes visible (shadowing an earlier same-name
     declaration) just before its own initializer compiles, mirroring the
     runtime's replace-then-eval ordering *)
  let sem = new_emitter () in
  List.iteri
    (fun k (s : Ast.static_decl) ->
      Hashtbl.replace statics_vis s.Ast.sname k;
      emit sem (I_static_alloc k);
      let fx =
        { prog; info; fn_idx; fn_table; statics_vis; em = sem; scopes = [];
          next_slot = 0 }
      in
      compile_expr fx s.Ast.sinit;
      emit sem (I_static_store k))
    prog.Ast.statics;
  {
    pc_fns = Array.map (compile_fn ~prog ~info ~fn_idx ~fn_table ~statics_vis) fn_table;
    pc_statics =
      Array.of_list
        (List.map
           (fun (s : Ast.static_decl) ->
             { si_ty = s.Ast.sty;
               si_size = Layout.size_of prog s.Ast.sty;
               si_align = Layout.align_of prog s.Ast.sty })
           prog.Ast.statics);
    pc_statics_code = finish sem;
    pc_main = Hashtbl.find_opt fn_idx "main";
  }

(* Flat, pre-resolved bytecode for MiniRust.

   One-pass lowered from the typechecked AST by [Compile]: local variables
   become compile-time frame-slot indices (the runtime does no name lookup
   at all), function calls carry direct indices into the function table,
   control flow is jump-threaded over a flat instruction array, and the
   common read-check-write sequences are fused into superinstructions
   ([I_load_local]/[I_store_local]/[I_local_binop]/...) that call straight
   into the packed-store and borrow fast paths with their layout
   precomputed.

   Instructions only carry data resolvable at compile time (slots, indices,
   AST types, byte sizes); every runtime judgment — permission checks,
   diagnostics, recovery — stays in the shared [Miri.Rt] cores so the VM is
   byte-identical to the tree-walker. *)

type instr =
  (* pushes *)
  | I_push_unit
  | I_push_bool of bool
  | I_push_int of int64 * Ast.int_width
  | I_push_fn of string * Ast.ty          (* bare function name as a value *)
  (* fused local/static access: slot or static index, layout precomputed *)
  | I_load_local of int                   (* read local slot, push value *)
  | I_store_local of int                  (* pop value, write local slot *)
  | I_load_deref_local of int             (* read local ptr, deref, read, push *)
  | I_store_deref_local of int            (* pop value; read local ptr, deref, write *)
  | I_local_binop of int * Ast.binop * int64 * Ast.int_width
      (* x = x <op> k: read slot, apply, write back *)
  | I_load_static of int
  | I_store_static of int
  (* operators *)
  | I_unop of Ast.unop
  | I_binop of Ast.binop                  (* never And/Or; those branch *)
  | I_to_int                              (* value_as_int coercion point *)
  (* control flow: absolute targets into the same instruction array *)
  | I_jump of int
  | I_br_false of int
  | I_cmp_br_false of Ast.binop * int     (* fused compare + branch *)
  | I_sc_and of int                       (* falsy: push false, jump past rhs *)
  | I_sc_or of int                        (* truthy: push true, jump past rhs *)
  (* aggregates *)
  | I_tuple of int
  | I_array of int
  | I_repeat of int
  (* borrows *)
  | I_ref of Ast.mutability               (* pop place, retag, push &/&mut *)
  | I_raw_of of Ast.mutability            (* pop place, retag, push raw ptr *)
  (* calls: direct function index, or a value popped from the stack *)
  | I_call of int * int                   (* fn index, arg count *)
  | I_call_arity of int * int             (* known fn, statically wrong arity *)
  | I_call_value of int                   (* arg count; callee below the args *)
  | I_call_unknown of string
  (* conversions and intrinsics *)
  | I_cast of Ast.ty
  | I_transmute of Ast.ty
  | I_offset
  | I_alloc
  | I_len_place
  | I_len_value
  | I_input
  | I_atomic_load
  | I_atomic_add
  | I_atomic_store
  (* place construction (separate pointer+type stack) *)
  | I_place_local of int
  | I_place_static of int
  | I_place_deref
  | I_place_index
  | I_place_index_unchecked
  | I_place_field of int
  | I_place_union_field of string
  | I_place_read                          (* pop place, typed read, push value *)
  | I_place_unknown of string             (* unresolved name: defined runtime error *)
  (* statements *)
  | I_stmt of int                         (* statement boundary: sid + yield *)
  | I_loop_head                           (* per-iteration yield of a while loop *)
  | I_pop
  | I_let of int * Ast.ty * int * int     (* slot, ty, size, align (unclamped) *)
  | I_let_dyn of int                      (* type only known from the value *)
  | I_assign                              (* pop place, pop value, write *)
  | I_push_scope
  | I_pop_scope
  | I_assert of string
  | I_panic of string
  | I_ret                                 (* pop return value, unwind frame *)
  | I_ret_unit
  | I_fn_end                              (* fell off the end of the body *)
  | I_print
  | I_dealloc
  | I_spawn of int * int * int            (* fn index, arg count, handle slot *)
  | I_spawn_unknown of string
  | I_join
  (* statics initialization prologue *)
  | I_static_alloc of int
  | I_static_store of int

type fn_code = {
  fc_name : string;
  fc_param_layout : (Ast.ty * int * int) array;  (* ty, size, align (unclamped) *)
  fc_ret : Ast.ty;
  fc_ret_unit : bool;           (* [equal_ty ret T_unit], precomputed *)
  fc_nslots : int;              (* frame slots incl. params *)
  fc_code : instr array;
}

type static_info = { si_ty : Ast.ty; si_size : int; si_align : int }

type program_code = {
  pc_fns : fn_code array;                (* same indexing as the fn table *)
  pc_statics : static_info array;        (* declaration order *)
  pc_statics_code : instr array;         (* alloc+init sequence, run pre-main *)
  pc_main : int option;                  (* first function named "main" *)
}

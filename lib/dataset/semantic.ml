type observation = {
  finished : bool;
  panicked : bool;
  trace : string list;
  errors : int;
}

let probe_config ~seed ~max_steps inputs =
  { Miri.Machine.default_config with
    Miri.Machine.mode = Miri.Machine.Stop_first; seed; max_steps; inputs;
    trace = false }

let observation_of_summary (s : Miri.Machine.summary) =
  if s.Miri.Machine.sm_compile_error then
    { finished = false; panicked = false; trace = []; errors = max_int }
  else
    { finished = s.Miri.Machine.sm_clean;
      panicked = s.Miri.Machine.sm_panic <> None;
      trace = s.Miri.Machine.sm_output;
      (* a blown allocation budget is a behavioural error, not a silent
         non-termination like a step-limit stop: without the extra count a
         resource-bombed candidate would probe as clean *)
      errors =
        s.Miri.Machine.sm_ub_count
        + (if s.Miri.Machine.sm_resource <> None then 1 else 0) }

(* roundtrip for cache storage: observations drop the panic message, so a
   placeholder is enough to reconstruct [panicked] *)
let summary_of_observation (o : observation) : Miri.Machine.summary =
  { Miri.Machine.sm_compile_error = o.errors = max_int;
    sm_clean = o.finished;
    sm_panic = (if o.panicked then Some "" else None);
    sm_output = o.trace;
    sm_ub_count = (if o.errors = max_int then 0 else o.errors);
    sm_error_count = 0;
    sm_resource = None }

let observe ?cache ?fingerprint ?(seed = 42) ?(max_steps = 200_000) program inputs =
  let config = probe_config ~seed ~max_steps inputs in
  observation_of_summary
    (Miri.Machine.analyze_summary ?cache ?fingerprint ~config program)

type verdict = {
  passes : bool;
  semantic : bool;
  per_probe : (observation * observation) list;
}

(* same termination class and same observable trace *)
let same_behaviour (a : observation) (b : observation) =
  a.finished = b.finished && a.panicked = b.panicked
  && List.length a.trace = List.length b.trace
  && List.for_all2 String.equal a.trace b.trace

let probe_key inputs =
  String.concat "," (Array.to_list (Array.map Int64.to_string inputs))

let reference_observations ?cache (case : Case.t) =
  (* id-neutral: a cached hit skips even the reference parse, so the parse's
     id consumption must be invisible either way *)
  Minirust.Ast.id_preserving @@ fun () ->
  match cache with
  | None -> List.map (observe (Case.fixed case)) case.Case.probes
  | Some c when not (Miri.Machine.Cache.enabled c) ->
    List.map (observe (Case.fixed case)) case.Case.probes
  | Some c ->
    (* keyed by case name + probe: the corpus is immutable, so a hit skips
       even re-parsing the reference source *)
    let reference = lazy (Case.fixed case) in
    List.map
      (fun inputs ->
        let key = Printf.sprintf "ref:%s:%s" case.Case.name (probe_key inputs) in
        observation_of_summary
          (Miri.Machine.Cache.memo c ~key (fun () ->
               summary_of_observation (observe (Lazy.force reference) inputs))))
      case.Case.probes

let check ?cache (case : Case.t) candidate =
  let refs = reference_observations ?cache case in
  (* one pretty-print per candidate, shared across all probe lookups *)
  let fingerprint =
    match cache with
    | Some c when Miri.Machine.Cache.enabled c ->
      Some (Minirust.Pretty.program candidate)
    | _ -> None
  in
  let cands = List.map (observe ?cache ?fingerprint candidate) case.Case.probes in
  let per_probe = List.combine cands refs in
  (* pass: no UB anywhere, and the candidate only panics where the reference
     itself panics (a clean panic on an input the developer fix also refuses
     is defined behaviour, not an unfixed error) *)
  let clean (c : observation) (r : observation) =
    c.errors = 0 && ((not c.panicked) || r.panicked)
  in
  let passes = List.for_all (fun (c, r) -> clean c r) per_probe in
  let semantic = passes && List.for_all (fun (c, r) -> same_behaviour c r) per_probe in
  { passes; semantic; per_probe }

let score ?cache case candidate =
  match Minirust.Typecheck.check candidate with
  | Error _ -> 0.02
  | Ok _ ->
    let v = check ?cache case candidate in
    if v.semantic then 1.0
    else if v.passes then 0.7
    else begin
      let clean_probes =
        List.length
          (List.filter
             (fun (c, r) -> c.errors = 0 && ((not c.panicked) || r.panicked))
             v.per_probe)
      in
      let frac = float_of_int clean_probes /. float_of_int (List.length v.per_probe) in
      0.15 +. (0.35 *. frac)
    end

let error_count ?(collect_limit = 25) program inputs =
  match Minirust.Typecheck.check program with
  | Error errors -> List.length errors
  | Ok info ->
    let config =
      { Miri.Machine.default_config with
        Miri.Machine.mode = Miri.Machine.Collect collect_limit; seed = 42;
        max_steps = 200_000; inputs; trace = false }
    in
    let r = Miri.Machine.run ~config program info in
    r.Miri.Machine.error_count

(** Pass and semantic-acceptability judgment — the paper's two metrics.

    - *pass*: the candidate program runs UB-free under the machine on every
      probe input (clean termination or a clean panic; panics are defined
      behaviour).
    - *exec* (semantic acceptability): additionally, on every probe input the
      candidate's observable behaviour equals the reference fix's — same
      [print] trace and same termination class. Two panics are considered
      the same termination class regardless of message, so an
      assertion-agent fix that panics exactly where the developer fix panics
      is acceptable.

    [score] condenses both into the oracle quality the candidate ranking
    uses. *)

type observation = {
  finished : bool;   (** terminated without UB and without panicking *)
  panicked : bool;
  trace : string list;
  errors : int;      (** UB diagnostics on this probe *)
}

val observe :
  ?cache:Miri.Machine.Cache.t -> ?fingerprint:string -> ?seed:int ->
  ?max_steps:int -> Minirust.Ast.program -> int64 array -> observation
(** Run one probe (stop-at-first-UB mode, fixed scheduler seed). A program
    that fails to typecheck observes as [errors = max_int]. With [cache],
    the underlying machine run is memoized on the pretty-printed program
    (or [fingerprint], if the caller already computed it) plus the probe
    configuration; observations are id-free, so this is transparent. *)

type verdict = {
  passes : bool;
  semantic : bool;
  per_probe : (observation * observation) list;  (** candidate, reference *)
}

val check : ?cache:Miri.Machine.Cache.t -> Case.t -> Minirust.Ast.program -> verdict
(** Judge a candidate repair of the given case. *)

val reference_observations : ?cache:Miri.Machine.Cache.t -> Case.t -> observation list
(** The reference fix's behaviour on each probe. With [cache], memoized
    under a [case-name × probe] key — a hit skips even the reference
    re-parse, which is the oracle-scoring hot path. *)

val score : ?cache:Miri.Machine.Cache.t -> Case.t -> Minirust.Ast.program -> float
(** Oracle quality in [0,1]: 1.0 = passes and semantically acceptable,
    0.7 = passes, below that scaled by the fraction of clean probes;
    ill-typed candidates score 0.02. *)

val error_count : ?collect_limit:int -> Minirust.Ast.program -> int64 array -> int
(** Collect-mode error count (the paper's n_i): UB diagnostics plus one if
    the run panicked; type errors count individually. *)
